#ifndef ADAMOVE_SERVE_SESSION_STORE_H_
#define ADAMOVE_SERVE_SESSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/durable_io.h"
#include "common/mutex.h"
#include "core/config.h"
#include "core/model.h"
#include "core/online_adapter.h"

namespace adamove::serve {

/// Second storage tier behind a SessionStore: evicted users are dehydrated
/// into it instead of dropped, and users absent from the hot tier are
/// hydrated back out of it on first touch. Implemented by the shard
/// subsystem's CompactStore (arena-backed compact blobs — DESIGN.md §12);
/// the interface lives here so serve/ does not depend on shard/.
///
/// Concurrency contract: both calls are invoked while the *caller's* shard
/// mutex is held, so an implementation must use only its own locks and must
/// never call back into the SessionStore (lock order: shard mutex, then
/// cold-tier internals — acyclic by construction).
class ColdTier {
 public:
  virtual ~ColdTier() = default;

  /// Removes `user`'s dehydrated state and returns it via `out`; false when
  /// the tier holds nothing for the user (out untouched).
  virtual bool Take(int64_t user, core::OnlineAdapter::UserSnapshot* out) = 0;

  /// Accepts a user's complete exported state (replacing any previous
  /// dehydrated state for that user).
  virtual void Accept(core::OnlineAdapter::UserSnapshot&& snap) = 0;
};

struct SessionStoreConfig {
  /// PTTA knowledge-base parameters of every per-shard adapter.
  core::PttaConfig ptta;
  /// Freshness window forwarded to core::OnlineAdapter.
  int64_t max_age_seconds = 5 * 72 * 3600;
  /// Mutex stripes; a user's state lives in shard (hash(user) % num_shards).
  int num_shards = 16;
  /// Resident-user cap across the whole store (0 = unbounded). Enforced
  /// per shard as ceil(max_resident_users / num_shards) via LRU eviction,
  /// which bounds memory at ~cap · 32 patterns · hidden floats.
  size_t max_resident_users = 0;
  /// Optional second tier (not owned; must outlive the store). When set,
  /// LRU eviction dehydrates the victim into it and a miss on the adapted
  /// path hydrates from it, so the cap bounds the *hot* footprint without
  /// forgetting anyone. Null = today's drop-on-evict behaviour.
  ColdTier* cold_tier = nullptr;
  /// Projects every ingested pattern onto the q8 power-of-two grid
  /// (common/qfloat.h) before it enters the knowledge base. With this on,
  /// dehydrating a user compresses patterns ~4x losslessly — the canonical
  /// floats round-trip bit-identically through the compact tier. Off (the
  /// default) keeps the legacy bit-exact ingest path.
  bool canonicalize_patterns = false;
};

/// How one adapted prediction was actually produced — the degradation
/// outcome the serving layer turns into per-request accounting.
enum class AdaptStatus : uint8_t {
  /// Normal path: patterns ingested, prediction from the user's fresh state.
  kAdapted,
  /// Session-store lookup faulted (simulated state loss): no per-user state
  /// was read or written; the scores are the base model's frozen logits.
  kStateUnavailable,
  /// PTTA pattern generation faulted: this request's transitions were not
  /// ingested; the prediction still used the user's *existing* (stale)
  /// knowledge base.
  kStaleState,
  /// Warm start in progress and this user's durable state has not been
  /// restored yet: the base model answered, and no fresh state was created
  /// (a fresh knowledge base would be clobbered — or worse, merged — when
  /// the user's snapshot frame arrives).
  kWarmStartPending,
  /// Deferred adaptation (DESIGN.md §16): this request's transitions were
  /// buffered into the user's pending queue instead of ingested, and the
  /// prediction came from the user's last cached rebuild — a valid, slightly
  /// stale adapted answer. The buffered deltas drain lazily (next inline
  /// predict) or in the background, after which state is bit-identical to
  /// the inline run.
  kStaleAdapt,
};

/// How one adapt micro-batch executes its per-user adaptation work.
enum class AdaptExecMode : uint8_t {
  /// Legacy inline adaptation — with no prior deferral this is byte-for-byte
  /// the pre-scheduler path (it still drains any pending deltas it finds, so
  /// a mode switch back to inline self-heals).
  kInline,
  /// Inline adaptation in an elastic service: same state semantics as
  /// kInline, plus each request's fresh rebuild is cached for later deferred
  /// predicts of the same user.
  kInlineElastic,
  /// Deferred adaptation: ingests buffered, predictions from the cached
  /// rebuild (kStaleAdapt), bounded by BatchAdaptOptions::max_stale.
  kDeferred,
};

/// Scheduler inputs of one BatchObserveAndPredictEncoded call.
struct BatchAdaptOptions {
  AdaptExecMode mode = AdaptExecMode::kInline;
  /// A deferred request that finds this many pending deltas is forced
  /// inline instead (drain + fresh rebuild), bounding staleness depth.
  size_t max_stale = 256;
};

/// Exact accounting of one batch's scheduler decisions (all zero in
/// kInline mode on a store that never deferred).
struct BatchAdaptStats {
  /// Transitions buffered into pending queues instead of ingested.
  uint64_t deferred_ingests = 0;
  /// Buffered deltas dropped by exact coalescing (provably could not have
  /// survived the per-location FIFO cap on drain).
  uint64_t coalesced_ingests = 0;
  /// Pending queues drained because an inline predict found them.
  uint64_t lazy_rebuilds = 0;
  /// Deferred requests forced inline by the max_stale bound.
  uint64_t forced_inline = 0;
  /// Per request: pending-delta depth the prediction was served at
  /// (0 for inline-served requests). Resized to requests.size().
  std::vector<uint32_t> stale_depth;
};

/// On-disk serving snapshots: a durable_io framed file (DESIGN.md §11).
/// Frame 0 is a header {format version, pattern dim, user count}; every
/// further frame is one user's knowledge base in OnlineAdapter's
/// deterministic wire encoding.
inline constexpr uint32_t kSnapshotMagic = 0xADA50001;

/// Accounting of one Snapshot or Restore pass.
struct SnapshotStats {
  size_t users = 0;
  size_t patterns = 0;
  /// Snapshot: exact file size written. Restore: bytes of user payload
  /// decoded.
  uint64_t bytes = 0;
  /// Restore only: the file ended mid-frame (crash-truncated); everything
  /// before the tear was imported.
  bool torn_tail = false;
};

/// Sharded per-user adapter state for the serving path. Each shard owns one
/// core::OnlineAdapter (whose state map is keyed by user) plus an LRU list
/// of its resident users; shard mutexes are independent, so Predict for one
/// user runs concurrently with Observe for users on other shards — the
/// "millions of users" scaling story is stripe parallelism plus bounded
/// residency, not a global lock.
class SessionStore {
 public:
  explicit SessionStore(const SessionStoreConfig& config);

  /// Ingests one observed transition (shard-locked; touches LRU).
  void Observe(int64_t user, const std::vector<float>& pattern,
               int64_t next_location, int64_t timestamp);

  /// Adapted scores from the user's resident knowledge base (shard-locked;
  /// touches LRU so actively-queried users stay resident).
  std::vector<float> Predict(const core::AdaptableModel& model, int64_t user,
                             const std::vector<float>& query,
                             int64_t query_time);

  /// Equivalent of core::OnlineAdapter::ObserveAndPredict against the
  /// sharded store, given pre-computed prefix representations `reps`
  /// ({T, H}, rows aligned with sample.recent). Split out from the encoder
  /// forward so the serving worker can time encode and adapt separately.
  ///
  /// Never fails: under an armed `serve.session_lookup` /
  /// `serve.ptta_generate` fault the call degrades (see AdaptStatus) but
  /// still returns real-model scores. `status`, when non-null, reports which
  /// path produced them; with no faults armed it is always kAdapted and the
  /// scores are bit-identical to the pre-fault-layer implementation.
  std::vector<float> ObserveAndPredictEncoded(const core::AdaptableModel& model,
                                              const data::Sample& sample,
                                              const nn::Tensor& reps,
                                              AdaptStatus* status = nullptr);

  /// Borrowed view of pre-computed prefix representations ({rows, cols},
  /// row-major, row k = prefix representation h_k). A view rather than a
  /// Tensor so the zero-allocation serving path can feed plan-encoded arena
  /// buffers (core::PlanScratch::reps) straight into the batch API without
  /// materializing a Tensor per request (DESIGN.md §14).
  struct RepsView {
    const float* data = nullptr;
    int64_t rows = 0;
    int64_t cols = 0;

    RepsView() = default;
    RepsView(const float* d, int64_t r, int64_t c)
        : data(d), rows(r), cols(c) {}
    explicit RepsView(const nn::Tensor& reps)
        : data(reps.data().data()), rows(reps.rows()), cols(reps.cols()) {}

    /// The query pattern: the final row (the current trajectory state).
    const float* query() const { return data + (rows - 1) * cols; }
  };

  /// One request of an adapt micro-batch: the sample and its pre-computed
  /// prefix representations, both borrowed (must outlive the call).
  struct BatchRequest {
    const data::Sample* sample = nullptr;
    RepsView reps;
  };

  /// ObserveAndPredictEncoded over a micro-batch, in two phases. Phase 1
  /// walks the requests in order and, per request, does exactly what the
  /// single-request path does under its shard lock — fault probes, warm
  /// gate, hydration, LRU touch, pattern ingestion — but instead of scoring
  /// in place it *collects* the adjusted-column rebuild jobs, copying the
  /// kept patterns into one flat arena shared by the whole batch
  /// (core::OnlineAdapter::CollectRebuildJobs). Phase 2 then scores every
  /// request in one lock-free parallel sweep over the arena
  /// (ScoreCollectedJobs) — degraded requests simply carry zero jobs, so
  /// the frozen fallback is the same sweep. Request i's scores and status
  /// are bit-identical to calling ObserveAndPredictEncoded sequentially in
  /// request order (fault-point evaluation order included); what changes is
  /// only where the arithmetic runs — outside the shard locks, batched.
  ///
  /// `statuses`, when non-null, is resized to requests.size() with request
  /// i's AdaptStatus at index i.
  std::vector<std::vector<float>> BatchObserveAndPredictEncoded(
      const core::AdaptableModel& model,
      const std::vector<BatchRequest>& requests,
      std::vector<AdaptStatus>* statuses = nullptr);

  /// Scheduler-aware variant (DESIGN.md §16): `options.mode` picks how each
  /// request's adaptation executes (see AdaptExecMode), `adapt_stats`, when
  /// non-null, receives this batch's exact deferral accounting. The
  /// default-options overload above delegates here with kInline, which is
  /// bit-identical to the historical path on a store that never deferred.
  ///
  /// Deferred-mode semantics per request: the transitions are buffered
  /// (ObserveDeferred — exact coalescing against the per-location FIFO cap),
  /// the prediction reuses the user's cached rebuild (no ranking; an empty
  /// cache means frozen scores through the same sweep), and the status is
  /// kStaleAdapt. A request that would exceed `options.max_stale` pending
  /// deltas is forced inline instead, so staleness stays bounded. Faults
  /// keep precedence: an armed serve.ptta_generate drops the transitions in
  /// every mode (kStaleState — nothing is buffered either).
  std::vector<std::vector<float>> BatchObserveAndPredictEncoded(
      const core::AdaptableModel& model,
      const std::vector<BatchRequest>& requests,
      const BatchAdaptOptions& options, std::vector<AdaptStatus>* statuses,
      BatchAdaptStats* adapt_stats);

  /// Drains up to `max_users` dirty users' pending deltas into their
  /// knowledge bases (per shard, ascending user id within a shard; 0 = all).
  /// The background-drain hook the service calls when pressure subsides.
  /// Returns the number of users drained.
  size_t DrainDirtyUsers(size_t max_users);

  /// Hot-resident users with a non-empty pending buffer, across shards.
  size_t DirtyUserCount() const;

  /// Buffered pending deltas across all hot-resident users.
  size_t PendingDeltaCount() const;

  /// The base-model fallback: frozen-classifier scores for the final row of
  /// `reps` (the query pattern). Reads no per-user state and takes no lock.
  std::vector<float> PredictFrozen(const core::AdaptableModel& model,
                                   const nn::Tensor& reps) const;

  /// RepsView variant of the fallback — the zero-alloc serving path's
  /// flavour (no query copy; the Tensor overload delegates here).
  std::vector<float> PredictFrozen(const core::AdaptableModel& model,
                                   RepsView reps) const;

  /// Drops one user's state wherever it lives — hot tier and cold tier
  /// (no-op if absent from both).
  void Forget(int64_t user);

  /// Removes `user`'s complete state from the store — hot tier first, then
  /// the cold tier — returning it via `out`. False when the user is unknown
  /// to both tiers (out untouched). The extraction primitive behind shard
  /// rebalancing: the moved state is re-installed elsewhere via InjectUser.
  bool ExtractUser(int64_t user, core::OnlineAdapter::UserSnapshot* out);

  /// Installs a complete user state into the hot tier (replacing any
  /// previous state, touching the LRU). Empty snapshots are dropped.
  void InjectUser(core::OnlineAdapter::UserSnapshot&& snap);

  /// Force-dehydrates one resident user into the cold tier, exactly as LRU
  /// eviction would. False when no cold tier is configured or the user is
  /// not hot-resident. Exposed for the capacity bench and tests.
  bool EvictToCold(int64_t user);

  /// All hot-resident users across shards, ascending.
  std::vector<int64_t> ResidentUsers() const;

  /// Dense footprint of all hot-resident state, summed over shards
  /// (core::OnlineAdapter::ResidentBytes accounting).
  size_t ResidentBytes() const;

  /// Persists every resident user's knowledge base to `path` via
  /// durable_io's atomic commit. Shards are exported one at a time under
  /// their own mutex — serving on other shards never stalls, and the file
  /// is crash-consistent per shard (each user frame is a state that shard
  /// actually held at some instant during the pass). Subject to the
  /// io.snapshot_write / io.snapshot_fsync fault points: a failed commit
  /// leaves the previous durable snapshot untouched.
  common::IoResult Snapshot(const std::string& path,
                            SnapshotStats* stats = nullptr) const;

  /// Restores user state from a snapshot, frame by frame, locking only the
  /// target user's shard per frame — safe to run concurrently with serving
  /// (the warm-start gate keeps not-yet-restored users off the adapted
  /// path). Each restored user replaces any in-memory state and touches the
  /// LRU, so the residency cap holds during restore too. A torn tail
  /// imports the verified prefix and reports ok (stats->torn_tail); CRC or
  /// decode corruption imports the verified prefix and returns the
  /// structured error — never UB, never a half-imported user.
  common::IoResult Restore(const std::string& path,
                           SnapshotStats* stats = nullptr);

  /// Warm-start gate. While active, ObserveAndPredictEncoded serves users
  /// without resident state the frozen base model (AdaptStatus::
  /// kWarmStartPending) instead of growing fresh state that an in-flight
  /// Restore would clobber. Users whose frames have landed get the adapted
  /// path immediately — recovery is progressive, not all-or-nothing.
  void BeginWarmStart() {
    warming_.store(true, std::memory_order_release);
  }
  void EndWarmStart() { warming_.store(false, std::memory_order_release); }
  bool warm_starting() const {
    return warming_.load(std::memory_order_acquire);
  }

  /// Distinct resident users across all shards.
  size_t UserCount() const;

  /// Stored patterns for one user (0 if evicted/unknown).
  size_t PatternCount(int64_t user) const;

  /// Users dropped by the LRU cap so far (dehydrated, not lost, when a cold
  /// tier is configured).
  uint64_t EvictionCount() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Users dehydrated into / rehydrated out of the cold tier so far.
  uint64_t DehydrationCount() const {
    return dehydrations_.load(std::memory_order_relaxed);
  }
  uint64_t HydrationCount() const {
    return hydrations_.load(std::memory_order_relaxed);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Shard index of a user — exposed so tests can construct colliding and
  /// non-colliding user sets deterministically.
  int ShardOf(int64_t user) const;

 private:
  /// One mutex stripe. The adapter (thread-compatible by design — see
  /// core::OnlineAdapter's contract) and the LRU bookkeeping are guarded by
  /// the shard mutex; the annotations make "touched shard state without
  /// shard.mu" a compile error under ADAMOVE_ANALYZE=ON.
  struct Shard {
    mutable common::Mutex mu;
    core::OnlineAdapter adapter ADAMOVE_GUARDED_BY(mu);
    /// Most-recently-used first; back() is the eviction victim.
    std::list<int64_t> lru ADAMOVE_GUARDED_BY(mu);
    std::unordered_map<int64_t, std::list<int64_t>::iterator> lru_pos
        ADAMOVE_GUARDED_BY(mu);

    Shard(const core::PttaConfig& ptta, int64_t max_age_seconds)
        : adapter(ptta, max_age_seconds) {}
  };

  /// Moves `user` to the LRU front, inserting if new; evicts the back of
  /// the list past the per-shard cap (dehydrating the victim into the cold
  /// tier when one is configured).
  void TouchLocked(Shard& shard, int64_t user) ADAMOVE_REQUIRES(shard.mu);

  /// Hydrates `user` from the cold tier when the hot tier misses. Returns
  /// false only when an armed `core.state_hydrate` fault blocked the
  /// hydration attempt — by contract the caller must then degrade without
  /// mutating any state (no LRU touch, no ingest, no tier change). The
  /// fault is probed *before* the tier is read, so a failed hydration
  /// leaves both tiers exactly as they were — conservatively, even a
  /// fresh-user miss degrades while the fault is armed, since telling the
  /// two apart would itself require reading the tier.
  bool EnsureResidentLocked(Shard& shard, int64_t user)
      ADAMOVE_REQUIRES(shard.mu);

  SessionStoreConfig config_;
  size_t per_shard_cap_ = 0;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> dehydrations_{0};
  std::atomic<uint64_t> hydrations_{0};
  /// Warm-start gate (see BeginWarmStart); read on the hot path with one
  /// relaxed-ish atomic load, so normal serving pays nothing for it.
  std::atomic<bool> warming_{false};
};

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_SESSION_STORE_H_
