#include "serve/adapt_scheduler.h"

#include <algorithm>
#include <string>

#include "common/env.h"

namespace adamove::serve {

AdaptSchedulerConfig AdaptSchedulerConfig::Resolve() const {
  AdaptSchedulerConfig resolved = *this;
  if (resolved.mode == AdaptMode::kAuto) {
    const std::string mode = common::EnvString("ADAMOVE_ADAPT_MODE", "inline");
    if (mode == "elastic") {
      resolved.mode = AdaptMode::kElastic;
    } else if (mode == "deferred") {
      resolved.mode = AdaptMode::kDeferredAlways;
    } else {
      resolved.mode = AdaptMode::kInline;  // unknown strings fail safe
    }
  }
  resolved.high_watermark =
      common::EnvDouble("ADAMOVE_ADAPT_HIGH", resolved.high_watermark);
  resolved.low_watermark =
      common::EnvDouble("ADAMOVE_ADAPT_LOW", resolved.low_watermark);
  resolved.ewma_alpha =
      common::EnvDouble("ADAMOVE_ADAPT_EWMA", resolved.ewma_alpha);
  resolved.max_stale = static_cast<size_t>(std::max(
      1, common::EnvInt("ADAMOVE_ADAPT_MAX_STALE",
                        static_cast<int>(resolved.max_stale))));
  resolved.drain_users_per_batch = static_cast<size_t>(std::max(
      0, common::EnvInt("ADAMOVE_ADAPT_DRAIN_USERS",
                        static_cast<int>(resolved.drain_users_per_batch))));
  // Clamp the band into sanity: alpha in (0, 1], low <= high.
  resolved.ewma_alpha = std::clamp(resolved.ewma_alpha, 1e-3, 1.0);
  resolved.high_watermark = std::max(resolved.high_watermark, 1e-6);
  resolved.low_watermark =
      std::clamp(resolved.low_watermark, 0.0, resolved.high_watermark);
  return resolved;
}

void PressureGauge::Update(size_t queue_depth, size_t queue_capacity,
                           double oldest_wait_us, double slack_ref_us) {
  const double depth_ratio =
      queue_capacity == 0
          ? 0.0
          : static_cast<double>(queue_depth) /
                static_cast<double>(queue_capacity);
  const double wait_ratio =
      slack_ref_us <= 0.0 ? 0.0 : oldest_wait_us / slack_ref_us;
  const double instant = std::max(depth_ratio, wait_ratio);
  bool tripped;
  bool recovered;
  {
    common::MutexLock lock(mu_);
    ewma_ = config_.ewma_alpha * instant + (1.0 - config_.ewma_alpha) * ewma_;
    const bool was = deferred_.load(std::memory_order_relaxed);
    tripped = !was && ewma_ >= config_.high_watermark;
    recovered = was && ewma_ <= config_.low_watermark;
    if (tripped) deferred_.store(true, std::memory_order_release);
    if (recovered) deferred_.store(false, std::memory_order_release);
  }
  if (tripped || recovered) {
    switches_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace adamove::serve
