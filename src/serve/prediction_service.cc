#include "serve/prediction_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/encoder.h"
#include "nn/autograd_mode.h"
#include "nn/tensor.h"

namespace adamove::serve {

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Last rung of the encoder degradation ladder: after this many consecutive
/// `serve.encode_forward` faults the worker recomputes locally anyway (the
/// forward is a pure deterministic function, so the local path can always
/// answer) and the request is marked degraded.
constexpr int kMaxEncodeAttempts = 3;

core::ForwardMode ResolveForwardMode(ServiceForwardMode mode) {
  switch (mode) {
    case ServiceForwardMode::kGraph:
      return core::ForwardMode::kGraph;
    case ServiceForwardMode::kPlan:
      return core::ForwardMode::kPlan;
    case ServiceForwardMode::kAuto:
      break;
  }
  return core::ForwardModeFromEnv();
}

}  // namespace

PredictionService::PredictionService(core::AdaptableModel& model,
                                     SessionStore& store,
                                     const ServiceConfig& config)
    : model_(model),
      store_(store),
      config_(config),
      adapt_config_(config.adapt.Resolve()),
      gauge_(adapt_config_),
      forward_mode_(ResolveForwardMode(config.forward)),
      planner_(model) {
  ADAMOVE_CHECK_GT(config_.workers, 0);
  ADAMOVE_CHECK_GT(config_.max_batch, 0);
  ADAMOVE_CHECK_GT(config_.queue_capacity, 0u);
  worker_stats_.reserve(static_cast<size_t>(config_.workers));
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

PredictionService::~PredictionService() { Shutdown(); }

std::future<Prediction> PredictionService::Submit(
    data::Sample sample, std::function<void()> on_complete) {
  return SubmitInternal(std::move(sample), /*frozen_only=*/false,
                        std::move(on_complete));
}

std::future<Prediction> PredictionService::SubmitFrozen(
    data::Sample sample, std::function<void()> on_complete) {
  return SubmitInternal(std::move(sample), /*frozen_only=*/true,
                        std::move(on_complete));
}

std::future<Prediction> PredictionService::SubmitInternal(
    data::Sample sample, bool frozen_only,
    std::function<void()> on_complete) {
  ADAMOVE_CHECK(!sample.recent.empty());
  Request request;
  request.sample = std::move(sample);
  request.frozen_only = frozen_only;
  request.on_complete = std::move(on_complete);
  std::future<Prediction> result = request.promise.get_future();
  bool shed = false;
  {
    common::MutexLock lock(mu_);
    if (config_.overflow == OverflowPolicy::kShed) {
      ADAMOVE_CHECK(!stop_);  // submitting after Shutdown is a bug
      shed = queue_.size() >= config_.queue_capacity;
    } else {
      while (!stop_ && queue_.size() >= config_.queue_capacity) {
        not_full_.Wait(mu_);
      }
      ADAMOVE_CHECK(!stop_);
    }
    if (!shed) {
      request.enqueue = Clock::now();
      queue_.push_back(std::move(request));
    }
  }
  if (shed) {
    shed_requests_.fetch_add(1, std::memory_order_relaxed);
    Prediction rejected;
    rejected.outcome = RequestOutcome::kShed;
    request.promise.set_value(std::move(rejected));
    if (request.on_complete) request.on_complete();
    return result;
  }
  not_empty_.NotifyOne();
  return result;
}

bool PredictionService::TrySubmit(data::Sample sample,
                                  std::future<Prediction>* out,
                                  std::function<void()> on_complete) {
  ADAMOVE_CHECK(!sample.recent.empty());
  Request request;
  request.sample = std::move(sample);
  request.on_complete = std::move(on_complete);
  std::future<Prediction> result = request.promise.get_future();
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!stop_);
    if (queue_.size() >= config_.queue_capacity) {
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Hand the future over *before* the request is queued: once a worker
    // can see the request it may complete it (and fire on_complete) at any
    // moment, and an open-loop caller reads `*out` from that callback.
    if (out != nullptr) *out = std::move(result);
    request.enqueue = Clock::now();
    queue_.push_back(std::move(request));
  }
  not_empty_.NotifyOne();
  return true;
}

void PredictionService::Shutdown() {
  if (warm_thread_.joinable()) warm_thread_.join();
  {
    common::MutexLock lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void PredictionService::WarmStartAsync(const std::string& path) {
  ADAMOVE_CHECK(!warm_thread_.joinable());  // one warm start at a time
  store_.BeginWarmStart();
  warm_thread_ = std::thread([this, path] {
    SnapshotStats stats;
    common::IoResult result = store_.Restore(path, &stats);
    // Gate down only after the restore finished (or failed): requests for
    // not-yet-restored users must keep falling back until the last frame
    // has been adopted, or fresh state could race the snapshot's.
    store_.EndWarmStart();
    common::MutexLock lock(warm_mu_);
    warm_result_ = std::move(result);
    warm_stats_ = stats;
  });
}

common::IoResult PredictionService::WaitWarmStart(SnapshotStats* stats) {
  if (warm_thread_.joinable()) warm_thread_.join();
  common::MutexLock lock(warm_mu_);
  if (stats != nullptr) *stats = warm_stats_;
  return warm_result_;
}

void PredictionService::WorkerLoop(int worker_index) {
  WorkerStats& stats = *worker_stats_[static_cast<size_t>(worker_index)];
  WorkerScratch scratch;
  for (;;) {
    std::vector<Request> batch;
    size_t depth = 0;
    {
      common::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) not_empty_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and fully drained
      // Dynamic flush: grow the batch until max_batch requests are queued
      // or the *oldest* request's deadline passes — whichever comes first.
      const auto deadline =
          queue_.front().enqueue +
          std::chrono::microseconds(config_.max_wait_us);
      while (static_cast<int>(queue_.size()) < config_.max_batch && !stop_) {
        if (not_empty_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
          break;
        }
        if (queue_.empty()) break;  // another worker flushed it first
      }
      if (queue_.empty()) continue;
      // The pressure signal is the depth at batch formation — including the
      // batch being taken. Measuring only the leftover would read a full
      // queue as calm whenever max_batch can swallow it in one take (small
      // elastic queues do exactly that), hiding genuine saturation.
      depth = queue_.size();
      const size_t take = std::min(
          queue_.size(), static_cast<size_t>(config_.max_batch));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    not_full_.NotifyAll();
    ProcessBatch(batch, depth, stats, scratch);
  }
}

void PredictionService::ProcessBatch(std::vector<Request>& batch,
                                     size_t queue_depth, WorkerStats& stats,
                                     WorkerScratch& scratch) {
  const auto picked_up = Clock::now();
  std::vector<Prediction> out(batch.size());

  // Elastic scheduling (DESIGN.md §16): fold this batch's backlog and the
  // oldest request's wait into the pressure gauge, then pick how the adapt
  // stage executes. The `serve.adapt_schedule` fault simulates a scheduler
  // misfire — the batch is forced deferred regardless of pressure — and is
  // probed only in elastic mode, so inline services keep their exact fault
  // evaluation sequence (bit-identity with the pre-scheduler path).
  AdaptExecMode exec_mode = AdaptExecMode::kInline;
  if (adapt_config_.mode == AdaptMode::kElastic) {
    const double oldest_wait_us = ElapsedUs(batch.front().enqueue, picked_up);
    // Saturation reference for the wait ratio: the request deadline when one
    // is configured, else several flush windows' worth of queueing.
    const double slack_ref_us =
        config_.deadline_us > 0
            ? static_cast<double>(config_.deadline_us)
            : 4.0 * static_cast<double>(config_.max_wait_us);
    gauge_.Update(queue_depth, config_.queue_capacity, oldest_wait_us,
                  slack_ref_us);
    const bool forced = common::FaultPoint("serve.adapt_schedule");
    exec_mode = gauge_.deferred() || forced ? AdaptExecMode::kDeferred
                                            : AdaptExecMode::kInlineElastic;
  } else if (adapt_config_.mode == AdaptMode::kDeferredAlways) {
    exec_mode = AdaptExecMode::kDeferred;
  }

  // A flush-path fault (e.g. a corrupted batch buffer) degrades the whole
  // batch to the base model rather than failing any request.
  const bool batch_degraded = common::FaultPoint("serve.batch_flush");

  // Encode stage: all forward passes of the batch back-to-back (read-only
  // on the shared model; per-request share timed individually so the
  // histogram stays per-request). A faulting forward is retried up to
  // kMaxEncodeAttempts times, then recomputed locally and marked degraded.
  //
  // Plan mode executes the compiled static plan into this worker's scratch
  // slot (zero allocations once warm) and takes the plan→graph rung of the
  // degradation ladder when the execute stage fails (`serve.plan_execute`
  // fault, or no plan for this encoder family): the graph walk is
  // bit-identical, so the request stays kOk and only plan_fallbacks ticks.
  std::vector<nn::Tensor> reps(batch.size());
  std::vector<SessionStore::RepsView> views(batch.size());
  std::vector<char> encode_degraded(batch.size(), 0);
  uint64_t plan_fallbacks = 0;
  if (forward_mode_ == core::ForwardMode::kPlan &&
      scratch.plan.size() < batch.size()) {
    scratch.plan.resize(batch.size());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    common::Timer timer;
    int attempt = 1;
    while (common::FaultPoint("serve.encode_forward")) {
      if (++attempt > kMaxEncodeAttempts) {
        encode_degraded[i] = 1;
        break;
      }
    }
    if (forward_mode_ == core::ForwardMode::kPlan) {
      core::PlanScratch& slot = scratch.plan[i];
      if (!common::FaultPoint("serve.plan_execute") &&
          planner_.EncodeInto(batch[i].sample, &slot)) {
        views[i] =
            SessionStore::RepsView(slot.reps.data(), slot.rows, slot.cols);
      } else {
        // Forced-graph fallback: the reference walk, deliberately not
        // PrefixRepresentations (which would re-enter plan mode).
        ++plan_fallbacks;
        if (core::TrajectoryEncoder* encoder = model_.trajectory_encoder()) {
          nn::NoGradGuard no_grad;
          reps[i] = encoder->Forward(batch[i].sample.recent,
                                     /*training=*/false);
        } else {
          reps[i] = model_.PrefixRepresentations(batch[i].sample);
        }
        views[i] = SessionStore::RepsView(reps[i]);
      }
    } else {
      reps[i] = model_.PrefixRepresentations(batch[i].sample);
      views[i] = SessionStore::RepsView(reps[i]);
    }
    out[i].encode_us = timer.ElapsedMs() * 1000.0;
    out[i].queue_us = ElapsedUs(batch[i].enqueue, picked_up);
  }

  // Adapt stage: requests that can take the adapted path (no missed
  // deadline, batch not degraded, not frozen-only) go through the store's
  // batched API — per-user knowledge-base updates run per shard lock, then
  // every rebuild is scored in one contiguous vectorized sweep over the
  // batch's flat pattern arena. The rest fall back to the base model
  // immediately. Per-request adapt_us is the stage's cost split evenly
  // across its adapted requests (the sweep is genuinely joint work).
  const auto deadline_budget = std::chrono::microseconds(config_.deadline_us);
  std::vector<char> warm_fallback(batch.size(), 0);
  std::vector<size_t> adapted;  // indices routed to the batched store call
  adapted.reserve(batch.size());
  std::vector<SessionStore::BatchRequest> store_batch;
  store_batch.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    common::Timer timer;
    Prediction& p = out[i];
    const bool deadline_missed =
        config_.deadline_us > 0 &&
        Clock::now() > batch[i].enqueue + deadline_budget;
    if (deadline_missed || batch_degraded || batch[i].frozen_only) {
      p.scores = store_.PredictFrozen(model_, views[i]);
      p.outcome = deadline_missed ? RequestOutcome::kTimedOut
                                  : RequestOutcome::kDegraded;
      p.adapt_us = timer.ElapsedMs() * 1000.0;
    } else {
      adapted.push_back(i);
      SessionStore::BatchRequest request;
      request.sample = &batch[i].sample;
      request.reps = views[i];
      store_batch.push_back(request);
    }
  }
  BatchAdaptStats adapt_stats;
  if (!adapted.empty()) {
    common::Timer timer;
    BatchAdaptOptions options;
    options.mode = exec_mode;
    options.max_stale = adapt_config_.max_stale;
    std::vector<AdaptStatus> statuses;
    std::vector<std::vector<float>> scores =
        store_.BatchObserveAndPredictEncoded(model_, store_batch, options,
                                             &statuses, &adapt_stats);
    const double per_request_us =
        timer.ElapsedMs() * 1000.0 / static_cast<double>(adapted.size());
    for (size_t a = 0; a < adapted.size(); ++a) {
      const size_t i = adapted[a];
      Prediction& p = out[i];
      p.scores = std::move(scores[a]);
      // A stale_adapt answer is a valid on-time adapted prediction — kOk,
      // flagged out-of-band (the RequestOutcome-adjacent deferral signal).
      const bool valid_adapt = statuses[a] == AdaptStatus::kAdapted ||
                               statuses[a] == AdaptStatus::kStaleAdapt;
      p.outcome = valid_adapt && encode_degraded[i] == 0
                      ? RequestOutcome::kOk
                      : RequestOutcome::kDegraded;
      if (statuses[a] == AdaptStatus::kStaleAdapt) {
        p.stale_adapt = true;
        p.stale_depth = adapt_stats.stale_depth[a];
      }
      if (statuses[a] == AdaptStatus::kWarmStartPending) warm_fallback[i] = 1;
      p.adapt_us = per_request_us;
    }
  }

  {
    common::MutexLock lock(stats.mu);
    for (size_t i = 0; i < out.size(); ++i) {
      const Prediction& p = out[i];
      stats.stats.queue_us.Record(p.queue_us);
      stats.stats.encode_us.Record(p.encode_us);
      stats.stats.adapt_us.Record(p.adapt_us);
      if (p.stale_adapt) {
        stats.stats.stale_adapt_requests += 1;
        stats.stats.stale_depth.Record(static_cast<double>(p.stale_depth));
      }
      if (p.outcome == RequestOutcome::kDegraded) {
        stats.stats.degraded_requests += 1;
        if (warm_fallback[i] != 0) stats.stats.warm_start_fallbacks += 1;
      } else if (p.outcome == RequestOutcome::kTimedOut) {
        stats.stats.timeouts += 1;
      }
    }
    stats.stats.completed += batch.size();
    stats.stats.batches += 1;
    stats.stats.plan_fallbacks += plan_fallbacks;
    stats.stats.deferred_ingests += adapt_stats.deferred_ingests;
    stats.stats.coalesced_ingests += adapt_stats.coalesced_ingests;
    stats.stats.lazy_rebuilds += adapt_stats.lazy_rebuilds;
    stats.stats.forced_inline_rebuilds += adapt_stats.forced_inline;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(out[i]));
    if (batch[i].on_complete) batch[i].on_complete();
  }

  // Background drain: once pressure has subsided, each batch retires a few
  // dirty users' pending queues — after the batch's promises resolved, so
  // callers never wait on catch-up work. Deferral therefore converges to
  // the inline state even for users who stop sending requests.
  if (adapt_config_.mode == AdaptMode::kElastic &&
      adapt_config_.drain_users_per_batch > 0 && !gauge_.deferred()) {
    const size_t drained =
        store_.DrainDirtyUsers(adapt_config_.drain_users_per_batch);
    if (drained > 0) {
      common::MutexLock lock(stats.mu);
      stats.stats.background_drains += drained;
    }
  }
}

ServiceStats PredictionService::Stats() const {
  ServiceStats merged;
  for (const auto& ws : worker_stats_) {
    common::MutexLock lock(ws->mu);
    merged.queue_us.Merge(ws->stats.queue_us);
    merged.encode_us.Merge(ws->stats.encode_us);
    merged.adapt_us.Merge(ws->stats.adapt_us);
    merged.completed += ws->stats.completed;
    merged.batches += ws->stats.batches;
    merged.degraded_requests += ws->stats.degraded_requests;
    merged.warm_start_fallbacks += ws->stats.warm_start_fallbacks;
    merged.timeouts += ws->stats.timeouts;
    merged.plan_fallbacks += ws->stats.plan_fallbacks;
    merged.stale_adapt_requests += ws->stats.stale_adapt_requests;
    merged.deferred_ingests += ws->stats.deferred_ingests;
    merged.coalesced_ingests += ws->stats.coalesced_ingests;
    merged.lazy_rebuilds += ws->stats.lazy_rebuilds;
    merged.forced_inline_rebuilds += ws->stats.forced_inline_rebuilds;
    merged.background_drains += ws->stats.background_drains;
    merged.stale_depth.Merge(ws->stats.stale_depth);
  }
  merged.adapt_mode_switches = gauge_.mode_switches();
  merged.shed_requests = shed_requests_.load(std::memory_order_relaxed);
  merged.plan_verify_rejects =
      static_cast<uint64_t>(planner_.verify_rejects());
  return merged;
}

}  // namespace adamove::serve
