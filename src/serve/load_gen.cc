#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "common/annotations.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"

namespace adamove::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Whether the prediction's argmax matches the true next location.
bool Hit(const Prediction& p, int64_t target_location) {
  if (p.scores.empty()) return false;
  const auto best = std::max_element(p.scores.begin(), p.scores.end());
  return static_cast<int64_t>(best - p.scores.begin()) == target_location;
}

/// Folds one delivered prediction into the result (caller holds the lock).
void RecordDelivered(const Prediction& p, Clock::time_point submit_at,
                     int64_t target_location, bool track_hits,
                     LoadGenResult* result) {
  result->e2e_us.Record(std::chrono::duration<double, std::micro>(
                            Clock::now() - submit_at)
                            .count());
  ++result->completed;
  if (p.outcome == RequestOutcome::kDegraded) ++result->degraded;
  if (p.outcome == RequestOutcome::kTimedOut) ++result->timed_out;
  if (p.stale_adapt) {
    ++result->stale_adapt;
    result->max_stale_depth = std::max(result->max_stale_depth, p.stale_depth);
  }
  if (track_hits) {
    ++result->scored;
    if (Hit(p, target_location)) ++result->hits;
  }
}

/// True open-loop replay: every scheduled arrival fires on time via
/// TrySubmit, completions land in a callback, and the only cap is the
/// explicit in-flight limit — so offered load really is config.target_qps
/// even when the service saturates far below it.
LoadGenResult RunOpenLoop(PredictionService& service,
                          const std::vector<data::Sample>& stream,
                          const LoadGenConfig& config, size_t total) {
  ADAMOVE_CHECK_GT(config.target_qps, 0.0);
  ADAMOVE_CHECK_GT(config.max_in_flight, 0u);

  struct Shared {
    common::Mutex mu;
    common::CondVar drained;
    size_t in_flight ADAMOVE_GUARDED_BY(mu) = 0;
    LoadGenResult result ADAMOVE_GUARDED_BY(mu);
  };
  Shared sh;
  /// One outstanding request. The future is assigned by TrySubmit *before*
  /// the request is visible to workers (its documented contract), so the
  /// completion callback can always read it.
  struct Pending {
    std::future<Prediction> future;
    Clock::time_point submit_at;
    int64_t target_location = 0;
  };

  common::Timer wall;
  const auto start = Clock::now();

  auto client = [&](int client_index) {
    size_t k = 0;
    for (size_t pos = static_cast<size_t>(client_index); pos < total;
         pos += static_cast<size_t>(config.clients), ++k) {
      const double global_index =
          static_cast<double>(k) * config.clients + client_index;
      const auto send_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(global_index /
                                                    config.target_qps));
      std::this_thread::sleep_until(send_at);
      {
        common::MutexLock lock(sh.mu);
        ++sh.result.arrivals;
        if (sh.in_flight >= config.max_in_flight) {
          // Exact source-side drop: the arrival happened (it counts), the
          // service never saw it.
          ++sh.result.dropped_arrivals;
          continue;
        }
        ++sh.in_flight;
      }
      auto pending = std::make_shared<Pending>();
      pending->submit_at = Clock::now();
      pending->target_location = stream[pos].target.location;
      const bool track_hits = config.track_hits;
      const bool accepted = service.TrySubmit(
          stream[pos], &pending->future, [&sh, pending, track_hits] {
            const Prediction p = pending->future.get();
            common::MutexLock lock(sh.mu);
            if (p.outcome == RequestOutcome::kShed) {
              ++sh.result.shed;
            } else {
              RecordDelivered(p, pending->submit_at, pending->target_location,
                              track_hits, &sh.result);
            }
            if (--sh.in_flight == 0) sh.drained.NotifyAll();
          });
      if (!accepted) {
        common::MutexLock lock(sh.mu);
        ++sh.result.shed;  // admission-queue full: shed, exactly once
        if (--sh.in_flight == 0) sh.drained.NotifyAll();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.clients));
  for (int i = 0; i < config.clients; ++i) threads.emplace_back(client, i);
  for (auto& t : threads) t.join();
  // Every arrival has been accounted as submitted or dropped; now wait for
  // the outstanding submissions to resolve so the balance is exact.
  {
    common::MutexLock lock(sh.mu);
    while (sh.in_flight > 0) sh.drained.Wait(sh.mu);
  }

  LoadGenResult result = std::move(sh.result);
  result.wall_seconds = wall.ElapsedSec();
  result.qps = result.wall_seconds > 0.0
                   ? static_cast<double>(result.completed) /
                         result.wall_seconds
                   : 0.0;
  return result;
}

}  // namespace

std::vector<data::Sample> BuildReplayStream(
    const std::vector<data::Sample>& samples, size_t min_requests) {
  std::vector<data::Sample> stream;
  for (const auto& s : samples) {
    if (!s.recent.empty()) stream.push_back(s);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const data::Sample& a, const data::Sample& b) {
                     return a.target.timestamp < b.target.timestamp;
                   });
  ADAMOVE_CHECK(!stream.empty());
  const size_t pass = stream.size();
  while (min_requests > 0 && stream.size() < min_requests) {
    for (size_t i = 0; i < pass && stream.size() < min_requests; ++i) {
      stream.push_back(stream[i]);
    }
  }
  return stream;
}

LoadGenResult RunLoadGen(PredictionService& service,
                         const std::vector<data::Sample>& stream,
                         const LoadGenConfig& config) {
  ADAMOVE_CHECK_GT(config.clients, 0);
  ADAMOVE_CHECK(!stream.empty());
  const size_t total = config.max_requests > 0
                           ? std::min(config.max_requests, stream.size())
                           : stream.size();
  if (config.open_loop) return RunOpenLoop(service, stream, config, total);

  common::Mutex merge_mu;
  LoadGenResult result;
  common::Timer wall;
  const auto start = Clock::now();

  auto client = [&](int client_index) {
    LoadGenResult local;
    // Pacing: client i sends its k-th request at start + (k·clients + i)/qps
    // — an even interleave of the global schedule across clients.
    size_t k = 0;
    for (size_t pos = static_cast<size_t>(client_index); pos < total;
         pos += static_cast<size_t>(config.clients), ++k) {
      if (config.target_qps > 0.0) {
        const double global_index =
            static_cast<double>(k) * config.clients + client_index;
        const auto send_at =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(global_index /
                                                      config.target_qps));
        std::this_thread::sleep_until(send_at);
      }
      const auto submit_at = Clock::now();
      ++local.arrivals;
      std::future<Prediction> future = service.Submit(stream[pos]);
      // Closed loop: at most one in-flight request per client.
      const Prediction p = future.get();
      if (p.outcome == RequestOutcome::kShed) {
        ++local.shed;
        continue;
      }
      RecordDelivered(p, submit_at, stream[pos].target.location,
                      config.track_hits, &local);
    }
    common::MutexLock lock(merge_mu);
    result.e2e_us.Merge(local.e2e_us);
    result.arrivals += local.arrivals;
    result.completed += local.completed;
    result.degraded += local.degraded;
    result.timed_out += local.timed_out;
    result.shed += local.shed;
    result.stale_adapt += local.stale_adapt;
    result.max_stale_depth =
        std::max(result.max_stale_depth, local.max_stale_depth);
    result.hits += local.hits;
    result.scored += local.scored;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.clients));
  for (int i = 0; i < config.clients; ++i) threads.emplace_back(client, i);
  for (auto& t : threads) t.join();

  result.wall_seconds = wall.ElapsedSec();
  result.qps = result.wall_seconds > 0.0
                   ? static_cast<double>(result.completed) /
                         result.wall_seconds
                   : 0.0;
  return result;
}

}  // namespace adamove::serve
