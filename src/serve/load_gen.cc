#include "serve/load_gen.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"

namespace adamove::serve {

std::vector<data::Sample> BuildReplayStream(
    const std::vector<data::Sample>& samples, size_t min_requests) {
  std::vector<data::Sample> stream;
  for (const auto& s : samples) {
    if (!s.recent.empty()) stream.push_back(s);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const data::Sample& a, const data::Sample& b) {
                     return a.target.timestamp < b.target.timestamp;
                   });
  ADAMOVE_CHECK(!stream.empty());
  const size_t pass = stream.size();
  while (min_requests > 0 && stream.size() < min_requests) {
    for (size_t i = 0; i < pass && stream.size() < min_requests; ++i) {
      stream.push_back(stream[i]);
    }
  }
  return stream;
}

LoadGenResult RunLoadGen(PredictionService& service,
                         const std::vector<data::Sample>& stream,
                         const LoadGenConfig& config) {
  ADAMOVE_CHECK_GT(config.clients, 0);
  ADAMOVE_CHECK(!stream.empty());
  const size_t total = config.max_requests > 0
                           ? std::min(config.max_requests, stream.size())
                           : stream.size();

  using Clock = std::chrono::steady_clock;
  common::Mutex merge_mu;
  LoadGenResult result;
  common::Timer wall;
  const auto start = Clock::now();

  auto client = [&](int client_index) {
    common::LatencyHistogram local_e2e;
    size_t local_completed = 0;
    size_t local_degraded = 0;
    size_t local_timed_out = 0;
    size_t local_shed = 0;
    // Pacing: client i sends its k-th request at start + (k·clients + i)/qps
    // — an even interleave of the global schedule across clients.
    size_t k = 0;
    for (size_t pos = static_cast<size_t>(client_index); pos < total;
         pos += static_cast<size_t>(config.clients), ++k) {
      if (config.target_qps > 0.0) {
        const double global_index =
            static_cast<double>(k) * config.clients + client_index;
        const auto send_at =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(global_index /
                                                      config.target_qps));
        std::this_thread::sleep_until(send_at);
      }
      const auto submit_at = Clock::now();
      std::future<Prediction> future = service.Submit(stream[pos]);
      // Closed loop: at most one in-flight request per client.
      const Prediction p = future.get();
      if (p.outcome == RequestOutcome::kShed) {
        ++local_shed;
        continue;
      }
      local_e2e.Record(std::chrono::duration<double, std::micro>(
                           Clock::now() - submit_at)
                           .count());
      ++local_completed;
      if (p.outcome == RequestOutcome::kDegraded) ++local_degraded;
      if (p.outcome == RequestOutcome::kTimedOut) ++local_timed_out;
    }
    common::MutexLock lock(merge_mu);
    result.e2e_us.Merge(local_e2e);
    result.completed += local_completed;
    result.degraded += local_degraded;
    result.timed_out += local_timed_out;
    result.shed += local_shed;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(config.clients));
  for (int i = 0; i < config.clients; ++i) threads.emplace_back(client, i);
  for (auto& t : threads) t.join();

  result.wall_seconds = wall.ElapsedSec();
  result.qps = result.wall_seconds > 0.0
                   ? static_cast<double>(result.completed) /
                         result.wall_seconds
                   : 0.0;
  return result;
}

}  // namespace adamove::serve
