#ifndef ADAMOVE_BASELINES_DEEPMOVE_H_
#define ADAMOVE_BASELINES_DEEPMOVE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/history_attention.h"
#include "core/model.h"

namespace adamove::baselines {

/// DeepMove (Feng et al., WWW'18), simplified to its credited mechanism: a
/// recurrent encoder over the recent trajectory plus an attention module
/// that *explicitly* fuses historical-trajectory hiddens at both training
/// and inference time. The predictor sees [h_rec ; attention-context].
///
/// DeepMove is an AdaptableModel so that attaching PTTA yields the paper's
/// DeepTTA variant (Table III / Fig. 9): its prefix representation at step k
/// is the concatenation of the recurrent hidden and its history-enhanced
/// counterpart, both of which one causal pass provides.
class DeepMove : public core::AdaptableModel {
 public:
  explicit DeepMove(const core::ModelConfig& config,
                    std::string name = "DeepMove");

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return name_; }
  int64_t num_locations() const override { return config_.num_locations; }

  nn::Tensor PrefixRepresentations(const data::Sample& sample) override;
  nn::Linear& classifier() override { return *classifier_; }
  const nn::Linear& classifier() const override { return *classifier_; }
  nn::Tensor TrainingLogits(const data::Sample& sample,
                            bool training) override;

 private:
  /// {T, 2H} joint representation of recent (+ history context) — shared by
  /// Loss/Scores/PrefixRepresentations.
  nn::Tensor JointRepresentations(const data::Sample& sample, bool training);

  core::ModelConfig config_;
  std::string name_;
  std::unique_ptr<core::TrajectoryEncoder> encoder_;
  std::unique_ptr<core::HistoryAttention> hist_attn_;
  std::unique_ptr<nn::Linear> classifier_;  // in = 2H
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_DEEPMOVE_H_
