#include "baselines/getnext.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

GetNext::GetNext(const core::ModelConfig& config) : config_(config) {
  common::Rng rng(config.seed + 505);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  encoder_ = std::make_unique<nn::TransformerSeqEncoder>(
      embedding_->dim(), config.hidden_size, /*num_layers=*/1,
      /*num_heads=*/4, config.dropout, rng);
  classifier_ = std::make_unique<nn::Linear>(config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("classifier", classifier_.get());
  flow_.resize(static_cast<size_t>(config.num_locations));
}

void GetNext::Fit(const data::Dataset& dataset) {
  // Count transitions over all training trajectories (the global flow map).
  std::vector<std::map<int64_t, float>> counts(
      static_cast<size_t>(config_.num_locations));
  auto add_transition = [&](int64_t from, int64_t to) {
    counts[static_cast<size_t>(from)][to] += 1.0f;
  };
  for (const auto& sample : dataset.train) {
    const auto& r = sample.recent;
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      add_transition(r[i].location, r[i + 1].location);
    }
    if (!r.empty()) add_transition(r.back().location, sample.target.location);
  }
  for (int64_t l = 0; l < config_.num_locations; ++l) {
    std::vector<std::pair<int64_t, float>> successors(
        counts[static_cast<size_t>(l)].begin(),
        counts[static_cast<size_t>(l)].end());
    std::sort(successors.begin(), successors.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (static_cast<int>(successors.size()) > kTopSuccessors) {
      successors.resize(kTopSuccessors);
    }
    float total = 0.0f;
    for (const auto& [to, w] : successors) total += w;
    if (total > 0.0f) {
      for (auto& [to, w] : successors) w /= total;
    }
    flow_[static_cast<size_t>(l)] = std::move(successors);
  }
}

nn::Tensor GetNext::GraphEnhancedEmbedding(
    const std::vector<data::Point>& points) {
  nn::Tensor emb = embedding_->Forward(points);
  // One propagation step over the flow map: average the location embeddings
  // of each point's top successors, weighted by transition frequency, and
  // blend it into the location slice of the point embedding.
  nn::Embedding& loc_emb = embedding_->location_embedding();
  const int64_t loc_dim = loc_emb.dim();
  std::vector<nn::Tensor> rows;
  rows.reserve(points.size());
  bool any_flow = false;
  for (const auto& p : points) {
    const auto& successors = flow_[static_cast<size_t>(p.location)];
    if (successors.empty()) {
      rows.push_back(nn::Tensor::Zeros({1, loc_dim}));
      continue;
    }
    any_flow = true;
    std::vector<int64_t> ids;
    nn::Tensor weights = nn::Tensor::Zeros(
        {1, static_cast<int64_t>(successors.size())});
    for (size_t i = 0; i < successors.size(); ++i) {
      ids.push_back(successors[i].first);
      weights.set(0, static_cast<int64_t>(i), successors[i].second);
    }
    rows.push_back(nn::MatMul(weights, loc_emb.Forward(ids)));
  }
  if (!any_flow) return emb;  // untrained flow map (Fit not yet called)
  nn::Tensor graph = nn::ConcatRows(rows);  // {T, loc_dim}
  // Pad to embedding width so the blend touches only the location slice.
  nn::Tensor pad = nn::Tensor::Zeros(
      {graph.rows(), embedding_->dim() - loc_dim});
  nn::Tensor graph_full = nn::ConcatCols({graph, pad});
  return nn::Add(emb, nn::ScalarMul(graph_full, 0.5f));
}

nn::Tensor GetNext::FinalRepresentation(const data::Sample& sample,
                                        bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h =
      encoder_->Forward(GraphEnhancedEmbedding(sample.recent), training);
  return nn::Row(h, h.rows() - 1);
}

nn::Tensor GetNext::Loss(const data::Sample& sample, bool training) {
  return nn::CrossEntropy(
      classifier_->Forward(FinalRepresentation(sample, training)),
      {sample.target.location});
}

std::vector<float> GetNext::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return classifier_->Forward(FinalRepresentation(sample, false)).data();
}

}  // namespace adamove::baselines
