#include "baselines/llm_mob.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/point.h"

namespace adamove::baselines {

nn::Tensor LlmMobSurrogate::Loss(const data::Sample& /*sample*/,
                                 bool /*training*/) {
  return nn::Tensor::Scalar(0.0f);
}

std::vector<float> LlmMobSurrogate::Scores(const data::Sample& sample) {
  std::vector<float> scores(static_cast<size_t>(num_locations_), 0.0f);
  // Historical stays (the prompt's long-term habit evidence).
  std::vector<float> hist_count(static_cast<size_t>(num_locations_), 0.0f);
  std::vector<float> hist_slot_count(static_cast<size_t>(num_locations_),
                                     0.0f);
  const int query_slot = data::TimeSlotOf(sample.target.timestamp);
  for (const auto& p : sample.history) {
    hist_count[static_cast<size_t>(p.location)] += 1.0f;
    if (data::TimeSlotOf(p.timestamp) == query_slot) {
      hist_slot_count[static_cast<size_t>(p.location)] += 1.0f;
    }
  }
  // Contextual stays: geometric recency weighting over the recent sequence.
  std::vector<float> recent_weight(static_cast<size_t>(num_locations_), 0.0f);
  float w = 1.0f;
  for (auto it = sample.recent.rbegin(); it != sample.recent.rend(); ++it) {
    recent_weight[static_cast<size_t>(it->location)] += w;
    w *= 0.8f;
  }
  // Deterministic per-sample perturbation (seeded by the query) modelling
  // the LLM's fuzzy ordering of near-tied candidates.
  common::Rng noise(static_cast<uint64_t>(sample.user) * 1000003u +
                    static_cast<uint64_t>(sample.target.timestamp));
  for (int64_t l = 0; l < num_locations_; ++l) {
    const size_t i = static_cast<size_t>(l);
    double raw = w_hist_ * std::log1p(hist_count[i]) +
                 w_recent_ * recent_weight[i] +
                 w_time_ * std::log1p(hist_slot_count[i]);
    if (rank_noise_ > 0.0) raw += noise.Uniform(0.0, rank_noise_);
    scores[i] = static_cast<float>(raw);
  }
  return scores;
}

}  // namespace adamove::baselines
