#include "baselines/nlpmm.h"

#include <cmath>

#include "common/check.h"
#include "data/point.h"

namespace adamove::baselines {

void Nlpmm::Fit(const data::Dataset& dataset) {
  global_first_.clear();
  personal_first_.clear();
  second_.clear();
  by_slot_.clear();
  for (const auto& sample : dataset.train) {
    // Reconstruct the full labeled sequence: recent points + target.
    std::vector<data::Point> seq = sample.recent;
    seq.push_back(sample.target);
    for (size_t i = 1; i < seq.size(); ++i) {
      const int64_t prev = seq[i - 1].location;
      const int64_t next = seq[i].location;
      global_first_[prev][next] += 1.0f;
      personal_first_[PersonalKey(sample.user, prev)][next] += 1.0f;
      if (i >= 2) {
        second_[PairKey(seq[i - 2].location, prev)][next] += 1.0f;
      }
      by_slot_[data::TimeSlotOf(seq[i].timestamp)][next] += 1.0f;
    }
  }
}

nn::Tensor Nlpmm::Loss(const data::Sample& /*sample*/, bool /*training*/) {
  return nn::Tensor::Scalar(0.0f);
}

std::vector<float> Nlpmm::Scores(const data::Sample& sample) {
  ADAMOVE_CHECK(!sample.recent.empty());
  std::vector<float> scores(static_cast<size_t>(num_locations_), 0.0f);
  auto blend = [&](const Counts* counts, double weight) {
    if (counts == nullptr) return;
    float total = 0.0f;
    for (const auto& [loc, c] : *counts) total += c;
    if (total <= 0.0f) return;
    for (const auto& [loc, c] : *counts) {
      scores[static_cast<size_t>(loc)] +=
          static_cast<float>(weight) * c / total;
    }
  };
  auto find = [](const auto& map, auto key) -> const Counts* {
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  };
  const int64_t last = sample.recent.back().location;
  blend(find(global_first_, last), w_global_);
  blend(find(personal_first_, PersonalKey(sample.user, last)), w_personal_);
  if (sample.recent.size() >= 2) {
    const int64_t prev2 = sample.recent[sample.recent.size() - 2].location;
    blend(find(second_, PairKey(prev2, last)), w_second_);
  }
  blend(find(by_slot_, data::TimeSlotOf(sample.target.timestamp)), w_slot_);
  return scores;
}

}  // namespace adamove::baselines
