#ifndef ADAMOVE_BASELINES_NLPMM_H_
#define ADAMOVE_BASELINES_NLPMM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"

namespace adamove::baselines {

/// NLPMM-style next-location predictor (Chen et al., PAKDD'14 — reference
/// [8] of the paper): an ensemble of Markov models — a *global* first-order
/// transition model, a *personal* first-order model, a second-order model,
/// and a time-slot-conditioned visit model — blended with fixed weights.
/// Non-neural; included as a second statistical anchor beside MarkovModel.
class Nlpmm : public core::MobilityModel {
 public:
  explicit Nlpmm(int64_t num_locations) : num_locations_(num_locations) {}

  bool trainable() const override { return false; }
  void Fit(const data::Dataset& dataset) override;

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "NLPMM"; }
  int64_t num_locations() const override { return num_locations_; }

 private:
  using Counts = std::unordered_map<int64_t, float>;

  int64_t num_locations_;
  std::unordered_map<int64_t, Counts> global_first_;            // l -> next
  std::unordered_map<int64_t, Counts> personal_first_;          // (u,l) key
  std::unordered_map<int64_t, Counts> second_;                  // (l1,l2) key
  std::unordered_map<int, Counts> by_slot_;                     // slot -> loc
  double w_global_ = 1.0;
  double w_personal_ = 1.5;
  double w_second_ = 1.0;
  double w_slot_ = 0.5;

  int64_t PersonalKey(int64_t user, int64_t loc) const {
    return user * num_locations_ + loc;
  }
  int64_t PairKey(int64_t a, int64_t b) const {
    return a * num_locations_ + b;
  }
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_NLPMM_H_
