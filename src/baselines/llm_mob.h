#ifndef ADAMOVE_BASELINES_LLM_MOB_H_
#define ADAMOVE_BASELINES_LLM_MOB_H_

#include <string>
#include <vector>

#include "core/model.h"

namespace adamove::baselines {

/// Training-free surrogate for LLM-Mob (Wang et al., 2023). The original
/// prompts an LLM with "historical stays" and "contextual stays" and asks it
/// to rank candidate locations considering the user's long-term habits, the
/// immediate context, and the time of the query. Since no LLM is available
/// offline, this surrogate scores candidates with the same three signals the
/// prompt exposes — and, like LLM-Mob, never sees the training split:
///
///   score(l) = w_h · log(1 + historical visits of l)
///            + w_r · recency-weighted visits of l in the recent trajectory
///            + w_t · log(1 + historical visits of l in the query time slot)
///
/// A bounded, deterministic per-sample perturbation is then added to the
/// raw scores: an LLM emits a ranked candidate list from fuzzy verbal
/// reasoning, not a sharp frequency argmax, so near-tied top candidates are
/// effectively reordered while clearly-worse candidates stay below. This
/// calibration reproduces the paper's observation that LLM-Mob has mediocre
/// Rec@1 (no fine-tuning, imprecise top choice) but competitive Rec@5/10
/// (sensible coarse candidate set).
class LlmMobSurrogate : public core::MobilityModel {
 public:
  explicit LlmMobSurrogate(int64_t num_locations)
      : num_locations_(num_locations) {}

  bool trainable() const override { return false; }

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "LLM-Mob"; }
  int64_t num_locations() const override { return num_locations_; }

 private:
  int64_t num_locations_;
  double w_hist_ = 1.0;
  double w_recent_ = 1.0;
  double w_time_ = 1.0;
  /// Amplitude of the rank-fuzziness perturbation (0 disables). Scores are
  /// on a log-count scale of roughly [0, 7], so 1.5 reorders near-ties at
  /// the top without promoting clearly-irrelevant candidates.
  double rank_noise_ = 1.5;
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_LLM_MOB_H_
