#ifndef ADAMOVE_BASELINES_STAN_H_
#define ADAMOVE_BASELINES_STAN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"
#include "nn/attention.h"

namespace adamove::baselines {

/// STAN (Luo et al., WWW'21), simplified to its credited mechanism: a
/// bi-layer attention over the recent trajectory where the first layer
/// aggregates spatio-temporal correlations (self-attention over point
/// embeddings enriched with time-interval embeddings between consecutive
/// check-ins) and the second layer recalls the target with an attention
/// queried by the final state.
class Stan : public core::MobilityModel {
 public:
  explicit Stan(const core::ModelConfig& config);

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "STAN"; }
  int64_t num_locations() const override { return config_.num_locations; }

  /// Number of time-interval buckets (hours between consecutive points,
  /// capped at 2 days).
  static constexpr int64_t kIntervalBuckets = 49;

 private:
  nn::Tensor FinalRepresentation(const data::Sample& sample, bool training);

  core::ModelConfig config_;
  common::Rng dropout_rng_;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::Embedding> interval_emb_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::unique_ptr<nn::MultiHeadAttention> self_attn_;
  std::unique_ptr<nn::MultiHeadAttention> recall_attn_;
  std::unique_ptr<nn::LayerNormLayer> ln_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_STAN_H_
