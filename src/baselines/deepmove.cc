#include "baselines/deepmove.h"

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

DeepMove::DeepMove(const core::ModelConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  common::Rng rng(config.seed + 101);
  encoder_ = std::make_unique<core::TrajectoryEncoder>(config, rng);
  hist_attn_ =
      std::make_unique<core::HistoryAttention>(config.hidden_size, rng);
  classifier_ = std::make_unique<nn::Linear>(2 * config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("hist_attn", hist_attn_.get());
  RegisterModule("classifier", classifier_.get());
}

nn::Tensor DeepMove::JointRepresentations(const data::Sample& sample,
                                          bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h_rec = encoder_->Forward(sample.recent, training);
  nn::Tensor context;
  if (!sample.history.empty()) {
    nn::Tensor h_hist = encoder_->Forward(sample.history, training);
    context = hist_attn_->Forward(h_hist, h_rec);
  } else {
    context = nn::Tensor::Zeros({h_rec.rows(), h_rec.cols()});
  }
  return nn::ConcatCols({h_rec, context});
}

nn::Tensor DeepMove::Loss(const data::Sample& sample, bool training) {
  nn::Tensor joint = JointRepresentations(sample, training);
  nn::Tensor logits =
      classifier_->Forward(nn::Row(joint, joint.rows() - 1));
  return nn::CrossEntropy(logits, {sample.target.location});
}

std::vector<float> DeepMove::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  nn::Tensor joint = JointRepresentations(sample, /*training=*/false);
  return classifier_->Forward(nn::Row(joint, joint.rows() - 1)).data();
}

nn::Tensor DeepMove::PrefixRepresentations(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return JointRepresentations(sample, /*training=*/false);
}

nn::Tensor DeepMove::TrainingLogits(const data::Sample& sample,
                                    bool training) {
  nn::Tensor joint = JointRepresentations(sample, training);
  return classifier_->Forward(nn::Row(joint, joint.rows() - 1));
}

}  // namespace adamove::baselines
