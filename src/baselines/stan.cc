#include "baselines/stan.h"

#include <algorithm>

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

Stan::Stan(const core::ModelConfig& config)
    : config_(config), dropout_rng_(config.seed + 303) {
  common::Rng rng(config.seed + 304);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  interval_emb_ = std::make_unique<nn::Embedding>(
      kIntervalBuckets, embedding_->dim(), rng);
  input_proj_ =
      std::make_unique<nn::Linear>(embedding_->dim(), config.hidden_size, rng);
  self_attn_ = std::make_unique<nn::MultiHeadAttention>(config.hidden_size,
                                                        4, rng);
  recall_attn_ = std::make_unique<nn::MultiHeadAttention>(config.hidden_size,
                                                          4, rng);
  ln_ = std::make_unique<nn::LayerNormLayer>(config.hidden_size);
  classifier_ = std::make_unique<nn::Linear>(config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("interval_emb", interval_emb_.get());
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("self_attn", self_attn_.get());
  RegisterModule("recall_attn", recall_attn_.get());
  RegisterModule("ln", ln_.get());
  RegisterModule("classifier", classifier_.get());
}

nn::Tensor Stan::FinalRepresentation(const data::Sample& sample,
                                     bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  const auto& points = sample.recent;
  nn::Tensor emb = embedding_->Forward(points);
  // Time-interval embeddings between consecutive check-ins (bucketized in
  // hours, capped at 48 h); position 0 gets bucket 0.
  std::vector<int64_t> buckets(points.size(), 0);
  for (size_t i = 1; i < points.size(); ++i) {
    const int64_t hours = (points[i].timestamp - points[i - 1].timestamp) /
                          data::kSecondsPerHour;
    buckets[i] = std::clamp<int64_t>(hours, 0, kIntervalBuckets - 1);
  }
  emb = nn::Add(emb, interval_emb_->Forward(buckets));
  nn::Tensor x = input_proj_->Forward(emb);
  // Layer 1: spatio-temporal aggregation (causal self-attention).
  nn::Tensor z = nn::Add(x, self_attn_->Forward(x, x, /*causal=*/true));
  z = ln_->Forward(z);
  z = nn::Dropout(z, config_.dropout, dropout_rng_, training);
  // Layer 2: target recall — the final state queries the whole sequence.
  nn::Tensor query = nn::Row(z, z.rows() - 1);
  return recall_attn_->Forward(query, z, /*causal=*/false);
}

nn::Tensor Stan::Loss(const data::Sample& sample, bool training) {
  nn::Tensor rep = FinalRepresentation(sample, training);
  return nn::CrossEntropy(classifier_->Forward(rep),
                          {sample.target.location});
}

std::vector<float> Stan::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return classifier_->Forward(FinalRepresentation(sample, false)).data();
}

}  // namespace adamove::baselines
