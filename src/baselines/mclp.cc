#include "baselines/mclp.h"

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

namespace {
constexpr int64_t kArrivalSlotDim = 8;
}  // namespace

Mclp::Mclp(const core::ModelConfig& config) : config_(config) {
  common::Rng rng(config.seed + 707);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  encoder_ = std::make_unique<nn::LstmEncoder>(embedding_->dim(),
                                               config.hidden_size, rng);
  arrival_slot_emb_ = std::make_unique<nn::Embedding>(data::kNumTimeSlots,
                                                      kArrivalSlotDim, rng);
  user_emb_ = std::make_unique<nn::Embedding>(config.num_users,
                                              config.user_emb_dim, rng);
  user_query_ = std::make_unique<nn::Linear>(config.user_emb_dim,
                                             embedding_->dim(), rng);
  pref_proj_ =
      std::make_unique<nn::Linear>(embedding_->dim(), config.hidden_size, rng);
  classifier_ = std::make_unique<nn::Linear>(
      2 * config.hidden_size + kArrivalSlotDim, config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("arrival_slot_emb", arrival_slot_emb_.get());
  RegisterModule("user_emb", user_emb_.get());
  RegisterModule("user_query", user_query_.get());
  RegisterModule("pref_proj", pref_proj_.get());
  RegisterModule("classifier", classifier_.get());
}

int Mclp::EstimateArrivalSlot(const std::vector<data::Point>& recent) {
  ADAMOVE_CHECK(!recent.empty());
  int64_t mean_gap = 6 * data::kSecondsPerHour;  // prior: ~6 h between stays
  if (recent.size() >= 2) {
    const int64_t span = recent.back().timestamp - recent.front().timestamp;
    mean_gap = span / static_cast<int64_t>(recent.size() - 1);
  }
  return data::TimeSlotOf(recent.back().timestamp + mean_gap);
}

nn::Tensor Mclp::FinalRepresentation(const data::Sample& sample,
                                     bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h =
      encoder_->Forward(embedding_->Forward(sample.recent), training);
  nn::Tensor h_last = nn::Row(h, h.rows() - 1);
  // User preference: the user embedding queries the historical points.
  nn::Tensor pref;
  if (!sample.history.empty()) {
    nn::Tensor hist_emb = embedding_->Forward(sample.history);
    nn::Tensor query =
        user_query_->Forward(user_emb_->Forward({sample.user}));
    nn::Tensor pooled =
        nn::ScaledDotAttention(query, hist_emb, hist_emb, /*causal=*/false);
    pref = pref_proj_->Forward(pooled);
  } else {
    pref = nn::Tensor::Zeros({1, config_.hidden_size});
  }
  // Arrival-time context from the (crude) estimator.
  const int slot = EstimateArrivalSlot(sample.recent);
  nn::Tensor slot_emb = arrival_slot_emb_->Forward({slot});
  return nn::ConcatCols({h_last, pref, slot_emb});
}

nn::Tensor Mclp::Loss(const data::Sample& sample, bool training) {
  return nn::CrossEntropy(
      classifier_->Forward(FinalRepresentation(sample, training)),
      {sample.target.location});
}

std::vector<float> Mclp::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return classifier_->Forward(FinalRepresentation(sample, false)).data();
}

}  // namespace adamove::baselines
