#include "baselines/clsprec.h"

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace adamove::baselines {

ClspRec::ClspRec(const core::ModelConfig& config) : config_(config) {
  common::Rng rng(config.seed + 606);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  shared_encoder_ = std::make_unique<nn::TransformerSeqEncoder>(
      embedding_->dim(), config.hidden_size, /*num_layers=*/1,
      /*num_heads=*/4, config.dropout, rng);
  classifier_ = std::make_unique<nn::Linear>(2 * config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("shared_encoder", shared_encoder_.get());
  RegisterModule("classifier", classifier_.get());
}

nn::Tensor ClspRec::FinalRepresentation(const data::Sample& sample,
                                        bool training,
                                        nn::Tensor* h_short_out,
                                        nn::Tensor* h_long_out) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h_rec =
      shared_encoder_->Forward(embedding_->Forward(sample.recent), training);
  nn::Tensor h_short = nn::Row(h_rec, h_rec.rows() - 1);
  nn::Tensor h_long;
  if (!sample.history.empty()) {
    nn::Tensor h_hist = shared_encoder_->Forward(
        embedding_->Forward(sample.history), training);
    h_long = nn::Row(h_hist, h_hist.rows() - 1);
  } else {
    h_long = nn::Tensor::Zeros({1, config_.hidden_size});
  }
  if (h_short_out != nullptr) *h_short_out = h_short;
  if (h_long_out != nullptr) *h_long_out = h_long;
  return nn::ConcatCols({h_short, h_long});
}

nn::Tensor ClspRec::Loss(const data::Sample& sample, bool training) {
  nn::Tensor h_short, h_long;
  nn::Tensor rep = FinalRepresentation(sample, training, &h_short, &h_long);
  nn::Tensor loss = nn::CrossEntropy(classifier_->Forward(rep),
                                     {sample.target.location});
  // Contrastive alignment of the two preference views: the shared encoder's
  // short-term state should agree with the long-term state of the same user;
  // negatives are other short-term states drawn from shuffled recent points
  // (reversed sequence) — a cheap in-sample negative view.
  if (!sample.history.empty() && sample.recent.size() >= 2) {
    std::vector<data::Point> reversed(sample.recent.rbegin(),
                                      sample.recent.rend());
    nn::Tensor h_neg = shared_encoder_->Forward(
        embedding_->Forward(reversed), training);
    nn::Tensor negatives = nn::Row(h_neg, h_neg.rows() - 1);
    nn::Tensor con = nn::InfoNceLoss(h_short, h_long, negatives);
    loss = nn::Add(
        loss, nn::ScalarMul(con, static_cast<float>(contrastive_weight_)));
  }
  return loss;
}

std::vector<float> ClspRec::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return classifier_
      ->Forward(FinalRepresentation(sample, false, nullptr, nullptr))
      .data();
}

}  // namespace adamove::baselines
