#ifndef ADAMOVE_BASELINES_REGISTRY_H_
#define ADAMOVE_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/model.h"

namespace adamove::baselines {

/// Builds a model by its paper name. Supported names: "LSTM", "DeepMove",
/// "LSTPM", "STAN", "GETNext", "CLSPRec", "MCLP", "MHSA", "LLM-Mob",
/// "Markov", "LightMob" (the last is AdaMove's model without PTTA).
/// Returns nullptr for unknown names.
std::unique_ptr<core::MobilityModel> MakeModel(
    const std::string& name, const core::ModelConfig& config);

/// The nine baselines of Table II, in the paper's order.
std::vector<std::string> PaperBaselineNames();

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_REGISTRY_H_
