#include "baselines/mhsa.h"

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

Mhsa::Mhsa(const core::ModelConfig& config) : config_(config) {
  common::Rng rng(config.seed + 404);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  encoder_ = std::make_unique<nn::TransformerSeqEncoder>(
      embedding_->dim(), config.hidden_size, /*num_layers=*/2,
      /*num_heads=*/8, config.dropout, rng);
  classifier_ = std::make_unique<nn::Linear>(config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("classifier", classifier_.get());
}

nn::Tensor Mhsa::Loss(const data::Sample& sample, bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h =
      encoder_->Forward(embedding_->Forward(sample.recent), training);
  nn::Tensor logits = classifier_->Forward(nn::Row(h, h.rows() - 1));
  return nn::CrossEntropy(logits, {sample.target.location});
}

std::vector<float> Mhsa::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  nn::Tensor h =
      encoder_->Forward(embedding_->Forward(sample.recent), false);
  return classifier_->Forward(nn::Row(h, h.rows() - 1)).data();
}

}  // namespace adamove::baselines
