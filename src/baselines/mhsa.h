#ifndef ADAMOVE_BASELINES_MHSA_H_
#define ADAMOVE_BASELINES_MHSA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"
#include "nn/attention.h"

namespace adamove::baselines {

/// MHSA (Hong et al., 2023): a multi-head self-attentional network over the
/// recent trajectory's context-enriched point embeddings; the last position
/// predicts the next location. Implemented as a causal Transformer encoder
/// over Eq. 4-style embeddings — the mechanism the paper credits it for.
class Mhsa : public core::MobilityModel {
 public:
  explicit Mhsa(const core::ModelConfig& config);

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "MHSA"; }
  int64_t num_locations() const override { return config_.num_locations; }

 private:
  core::ModelConfig config_;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::TransformerSeqEncoder> encoder_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_MHSA_H_
