#include "baselines/lstpm.h"

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::baselines {

namespace {

// Splits a flat history into session-like chunks on 72 h gaps relative to
// the chunk's first point (mirrors the dataset's sessionization).
std::vector<std::pair<size_t, size_t>> SessionRanges(
    const std::vector<data::Point>& points) {
  std::vector<std::pair<size_t, size_t>> ranges;
  const int64_t window = 72 * data::kSecondsPerHour;
  size_t begin = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0 && points[i].timestamp - points[begin].timestamp > window) {
      ranges.emplace_back(begin, i);
      begin = i;
    }
  }
  if (begin < points.size()) ranges.emplace_back(begin, points.size());
  return ranges;
}

}  // namespace

Lstpm::Lstpm(const core::ModelConfig& config) : config_(config) {
  common::Rng rng(config.seed + 202);
  embedding_ = std::make_unique<core::PointEmbedding>(config, rng);
  short_term_ = std::make_unique<nn::LstmEncoder>(embedding_->dim(),
                                                  config.hidden_size, rng);
  session_proj_ = std::make_unique<nn::Linear>(embedding_->dim(),
                                               config.hidden_size, rng);
  query_proj_ = std::make_unique<nn::Linear>(config.hidden_size,
                                             config.hidden_size, rng);
  classifier_ = std::make_unique<nn::Linear>(2 * config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("short_term", short_term_.get());
  RegisterModule("session_proj", session_proj_.get());
  RegisterModule("query_proj", query_proj_.get());
  RegisterModule("classifier", classifier_.get());
}

nn::Tensor Lstpm::FinalRepresentation(const data::Sample& sample,
                                      bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor emb_rec = embedding_->Forward(sample.recent);
  nn::Tensor h_short = short_term_->Forward(emb_rec, training);
  nn::Tensor h_last = nn::Row(h_short, h_short.rows() - 1);

  nn::Tensor context;
  if (!sample.history.empty()) {
    // Session-level pooled representations of the history.
    nn::Tensor emb_hist = embedding_->Forward(sample.history);
    std::vector<nn::Tensor> pooled;
    for (const auto& [begin, end] : SessionRanges(sample.history)) {
      nn::Tensor chunk = nn::SliceRows(emb_hist, static_cast<int64_t>(begin),
                                       static_cast<int64_t>(end - begin));
      // Mean pooling over the session.
      nn::Tensor mean = nn::ScalarMul(
          nn::MatMul(nn::Tensor::Full({1, chunk.rows()}, 1.0f), chunk),
          1.0f / static_cast<float>(chunk.rows()));
      pooled.push_back(mean);
    }
    nn::Tensor sessions = session_proj_->Forward(nn::ConcatRows(pooled));
    // Non-local attention: the short-term state queries the session bank.
    nn::Tensor q = query_proj_->Forward(h_last);
    context = nn::ScaledDotAttention(q, sessions, sessions,
                                     /*causal=*/false);
  } else {
    context = nn::Tensor::Zeros({1, config_.hidden_size});
  }
  return nn::ConcatCols({h_last, context});
}

nn::Tensor Lstpm::Loss(const data::Sample& sample, bool training) {
  nn::Tensor rep = FinalRepresentation(sample, training);
  return nn::CrossEntropy(classifier_->Forward(rep),
                          {sample.target.location});
}

std::vector<float> Lstpm::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return classifier_->Forward(FinalRepresentation(sample, false)).data();
}

}  // namespace adamove::baselines
