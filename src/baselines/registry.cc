#include "baselines/registry.h"

#include "baselines/clsprec.h"
#include "baselines/deepmove.h"
#include "baselines/getnext.h"
#include "baselines/llm_mob.h"
#include "baselines/lstpm.h"
#include "baselines/markov.h"
#include "baselines/mclp.h"
#include "baselines/mhsa.h"
#include "baselines/nlpmm.h"
#include "baselines/stan.h"
#include "core/lightmob.h"

namespace adamove::baselines {

std::unique_ptr<core::MobilityModel> MakeModel(
    const std::string& name, const core::ModelConfig& config) {
  if (name == "LSTM") {
    // The LSTM baseline is exactly LightMob's base model: recent-only
    // encoder + FC predictor, no history attention, no contrastive loss.
    core::ModelConfig base = config;
    base.lambda = 0.0;
    base.encoder = core::EncoderType::kLstm;
    return std::make_unique<core::LightMob>(base, "LSTM");
  }
  if (name == "LightMob") {
    return std::make_unique<core::LightMob>(config);
  }
  if (name == "DeepMove") return std::make_unique<DeepMove>(config);
  if (name == "LSTPM") return std::make_unique<Lstpm>(config);
  if (name == "STAN") return std::make_unique<Stan>(config);
  if (name == "GETNext") return std::make_unique<GetNext>(config);
  if (name == "CLSPRec") return std::make_unique<ClspRec>(config);
  if (name == "MCLP") return std::make_unique<Mclp>(config);
  if (name == "MHSA") return std::make_unique<Mhsa>(config);
  if (name == "LLM-Mob") {
    return std::make_unique<LlmMobSurrogate>(config.num_locations);
  }
  if (name == "Markov") {
    return std::make_unique<MarkovModel>(config.num_locations);
  }
  if (name == "NLPMM") {
    return std::make_unique<Nlpmm>(config.num_locations);
  }
  return nullptr;
}

std::vector<std::string> PaperBaselineNames() {
  return {"LSTM",    "DeepMove", "LSTPM", "STAN",    "GETNext",
          "CLSPRec", "MCLP",     "MHSA",  "LLM-Mob"};
}

}  // namespace adamove::baselines
