#ifndef ADAMOVE_BASELINES_MCLP_H_
#define ADAMOVE_BASELINES_MCLP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"

namespace adamove::baselines {

/// MCLP (Sun et al., KDD'24), simplified to its credited mechanisms: the
/// next location is predicted from (a) the sequential state of the recent
/// trajectory, (b) an explicit *user preference* vector obtained by
/// attention-pooling the user's historical point embeddings with the user
/// embedding as query, and (c) a *predicted next arrival time* used as
/// context. The arrival time is estimated from the recent inter-check-in
/// gaps — deliberately a crude estimator, matching the paper's remark that
/// MCLP's gains are limited by unreliable arrival-time prediction.
class Mclp : public core::MobilityModel {
 public:
  explicit Mclp(const core::ModelConfig& config);

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "MCLP"; }
  int64_t num_locations() const override { return config_.num_locations; }

  /// The arrival-time estimator: last timestamp + mean recent gap, encoded
  /// as one of the 48 time slots. Exposed for tests.
  static int EstimateArrivalSlot(const std::vector<data::Point>& recent);

 private:
  nn::Tensor FinalRepresentation(const data::Sample& sample, bool training);

  core::ModelConfig config_;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::SequenceEncoder> encoder_;
  std::unique_ptr<nn::Embedding> arrival_slot_emb_;
  std::unique_ptr<nn::Linear> user_query_;   // user emb dim -> emb dim
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Linear> pref_proj_;    // emb dim -> H
  std::unique_ptr<nn::Linear> classifier_;   // in = 2H + slot dim
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_MCLP_H_
