#ifndef ADAMOVE_BASELINES_GETNEXT_H_
#define ADAMOVE_BASELINES_GETNEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"
#include "nn/attention.h"

namespace adamove::baselines {

/// GETNext (Yang et al., SIGIR'22), simplified to its credited mechanism:
/// a *global trajectory flow map* — the location-transition graph counted
/// over all training trajectories — enhances each location's embedding with
/// a weighted average of its top successors' embeddings (one propagation
/// step of the flow graph, the collaborative signal), before a Transformer
/// encoder predicts the next location. Fit() builds the flow map.
class GetNext : public core::MobilityModel {
 public:
  explicit GetNext(const core::ModelConfig& config);

  void Fit(const data::Dataset& dataset) override;

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "GETNext"; }
  int64_t num_locations() const override { return config_.num_locations; }

  /// Successors kept per location in the flow map.
  static constexpr int kTopSuccessors = 5;

 private:
  nn::Tensor GraphEnhancedEmbedding(const std::vector<data::Point>& points);
  nn::Tensor FinalRepresentation(const data::Sample& sample, bool training);

  core::ModelConfig config_;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::TransformerSeqEncoder> encoder_;
  std::unique_ptr<nn::Linear> classifier_;
  // flow map: per location, (successor, normalized weight), top-k.
  std::vector<std::vector<std::pair<int64_t, float>>> flow_;
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_GETNEXT_H_
