#ifndef ADAMOVE_BASELINES_CLSPREC_H_
#define ADAMOVE_BASELINES_CLSPREC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"
#include "nn/attention.h"

namespace adamove::baselines {

/// CLSPRec (Duan et al., CIKM'23), simplified to its credited mechanism: a
/// *shared* Transformer trajectory encoder applied to both the long-term
/// (historical) and short-term (recent) sequences, trained with a
/// contrastive objective aligning the two preference views plus the usual
/// cross-entropy; the predictor combines both views. Unlike LightMob (which
/// uses contrastive learning to *drop* the history branch at test time),
/// CLSPRec still encodes the history at inference.
class ClspRec : public core::MobilityModel {
 public:
  explicit ClspRec(const core::ModelConfig& config);

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "CLSPRec"; }
  int64_t num_locations() const override { return config_.num_locations; }

 private:
  nn::Tensor FinalRepresentation(const data::Sample& sample, bool training,
                                 nn::Tensor* h_short_out,
                                 nn::Tensor* h_long_out);

  core::ModelConfig config_;
  double contrastive_weight_ = 0.3;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::TransformerSeqEncoder> shared_encoder_;
  std::unique_ptr<nn::Linear> classifier_;  // in = 2H
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_CLSPREC_H_
