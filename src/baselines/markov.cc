#include "baselines/markov.h"

#include "common/check.h"

namespace adamove::baselines {

void MarkovModel::Fit(const data::Dataset& dataset) {
  popularity_.assign(static_cast<size_t>(num_locations_), 0.0f);
  transitions_.clear();
  for (const auto& sample : dataset.train) {
    // Count consecutive transitions inside the recent trajectory plus the
    // final transition to the target.
    const auto& r = sample.recent;
    for (size_t i = 0; i + 1 < r.size(); ++i) {
      transitions_[r[i].location][r[i + 1].location] += 1.0f;
      popularity_[static_cast<size_t>(r[i + 1].location)] += 1.0f;
    }
    if (!r.empty()) {
      transitions_[r.back().location][sample.target.location] += 1.0f;
    }
    popularity_[static_cast<size_t>(sample.target.location)] += 1.0f;
  }
}

nn::Tensor MarkovModel::Loss(const data::Sample& /*sample*/,
                             bool /*training*/) {
  // Non-gradient model; the trainer never calls this (trainable() is false).
  return nn::Tensor::Scalar(0.0f);
}

std::vector<float> MarkovModel::Scores(const data::Sample& sample) {
  ADAMOVE_CHECK(!sample.recent.empty());
  // Smoothed: transition counts dominate, popularity breaks ties.
  float pop_max = 1.0f;
  for (float p : popularity_) pop_max = std::max(pop_max, p);
  std::vector<float> scores(static_cast<size_t>(num_locations_), 0.0f);
  for (int64_t l = 0; l < num_locations_; ++l) {
    scores[static_cast<size_t>(l)] =
        0.5f * popularity_[static_cast<size_t>(l)] / pop_max;
  }
  auto it = transitions_.find(sample.recent.back().location);
  if (it != transitions_.end()) {
    for (const auto& [to, count] : it->second) {
      scores[static_cast<size_t>(to)] += count;
    }
  }
  return scores;
}

}  // namespace adamove::baselines
