#ifndef ADAMOVE_BASELINES_LSTPM_H_
#define ADAMOVE_BASELINES_LSTPM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/model.h"

namespace adamove::baselines {

/// LSTPM (Sun et al., AAAI'20), simplified to its credited mechanisms:
/// long-term preference via a non-local attention over *session-level*
/// pooled representations of the historical trajectory, and short-term
/// preference from a recurrent pass over the recent trajectory. The
/// predictor sees [h_short ; long-term context].
class Lstpm : public core::MobilityModel {
 public:
  explicit Lstpm(const core::ModelConfig& config);

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "LSTPM"; }
  int64_t num_locations() const override { return config_.num_locations; }

 private:
  nn::Tensor FinalRepresentation(const data::Sample& sample, bool training);

  core::ModelConfig config_;
  std::unique_ptr<core::PointEmbedding> embedding_;
  std::unique_ptr<nn::SequenceEncoder> short_term_;
  std::unique_ptr<nn::Linear> session_proj_;  // pooled emb -> H
  std::unique_ptr<nn::Linear> query_proj_;    // non-local attention query
  std::unique_ptr<nn::Linear> classifier_;    // in = 2H
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_LSTPM_H_
