#ifndef ADAMOVE_BASELINES_MARKOV_H_
#define ADAMOVE_BASELINES_MARKOV_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"

namespace adamove::baselines {

/// First-order Markov transition model with add-one smoothing against the
/// global popularity prior. Not one of the paper's nine baselines; kept as a
/// non-neural sanity anchor (classic PMC-style predictor, cf. [7], [8]).
class MarkovModel : public core::MobilityModel {
 public:
  explicit MarkovModel(int64_t num_locations)
      : num_locations_(num_locations) {}

  bool trainable() const override { return false; }
  void Fit(const data::Dataset& dataset) override;

  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return "Markov"; }
  int64_t num_locations() const override { return num_locations_; }

 private:
  int64_t num_locations_;
  // transitions_[from][to] = count
  std::unordered_map<int64_t, std::unordered_map<int64_t, float>> transitions_;
  std::vector<float> popularity_;
};

}  // namespace adamove::baselines

#endif  // ADAMOVE_BASELINES_MARKOV_H_
