#include "shard/compact_state.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/qfloat.h"

namespace adamove::shard {

namespace {

using core::OnlineAdapter;

constexpr uint8_t kModeRawF32 = 0;
constexpr uint8_t kModeQ8 = 1;
/// Raw f32 with an explicit per-entry length, for entries whose pattern
/// size differs from the header dimension (the store accepts any size).
constexpr uint8_t kModeRawVar = 2;

/// Dimension cap mirroring the durable layer's frame-size discipline: no
/// legitimate encoder hidden state is near this, so a larger on-wire value
/// is corruption, rejected before any allocation.
constexpr uint64_t kMaxPatternDim = 1u << 20;

/// True iff (block) decodes back to exactly `x` — the losslessness gate for
/// q8 storage.
bool Q8RoundTripsExactly(const std::vector<float>& x,
                         const common::QfloatBlock& block) {
  const float scale = std::ldexp(1.0f, block.exponent);
  for (size_t i = 0; i < x.size(); ++i) {
    if (static_cast<float>(block.q[i]) * scale != x[i]) return false;
  }
  return true;
}

/// Appends one pattern as mode byte + payload (shared by stored entries and
/// pending deltas, so both sections keep the same lossless-quantize rules).
/// Returns whether the q8 mode was used.
bool AppendPattern(const std::vector<float>& pattern, uint64_t dim,
                   const CompactOptions& options, common::QfloatBlock* block,
                   std::string* out) {
  const size_t size = pattern.size();
  // q8 payloads are implicitly `dim` bytes, so only uniform-size patterns
  // qualify; off-dimension patterns fall through to the explicit-length raw
  // mode and the blob stays decodable.
  if (options.quantize && size == dim &&
      common::QfloatEncodable(pattern.data(), size)) {
    common::QfloatEncode(pattern.data(), size, block);
    if (Q8RoundTripsExactly(pattern, *block)) {
      out->push_back(static_cast<char>(kModeQ8));
      common::AppendZigzag(out, block->exponent);
      out->append(reinterpret_cast<const char*>(block->q.data()),
                  block->q.size());
      return true;
    }
  }
  if (size == dim) {
    out->push_back(static_cast<char>(kModeRawF32));
  } else {
    out->push_back(static_cast<char>(kModeRawVar));
    common::AppendVarint(out, size);
  }
  common::AppendF32Array(out, pattern.data(), size);
  return false;
}

/// Reads one mode byte + pattern payload (the inverse of AppendPattern).
common::IoResult ReadPattern(common::WireReader* reader, uint64_t dim,
                             std::vector<float>* pattern) {
  std::string_view mode_byte;
  if (!reader->ReadBytes(1, &mode_byte)) {
    return common::IoResult::Fail("compact user: truncated pattern mode");
  }
  const auto mode = static_cast<uint8_t>(mode_byte[0]);
  if (mode == kModeRawF32) {
    if (!reader->ReadF32Array(dim, pattern)) {
      return common::IoResult::Fail(
          "compact user: raw pattern larger than the remaining blob");
    }
  } else if (mode == kModeQ8) {
    int64_t exponent = 0;
    std::string_view q_bytes;
    if (!reader->ReadZigzag(&exponent) || !reader->ReadBytes(dim, &q_bytes)) {
      return common::IoResult::Fail(
          "compact user: q8 pattern larger than the remaining blob");
    }
    // Float exponents live in a narrow band; anything else is corrupt (and
    // would push ldexp into inf/0, breaking the exactness contract).
    if (exponent < -160 || exponent > 140) {
      return common::IoResult::Fail("compact user: q8 exponent " +
                                    std::to_string(exponent) +
                                    " out of range");
    }
    const float scale = std::ldexp(1.0f, static_cast<int>(exponent));
    pattern->resize(dim);
    for (uint64_t i = 0; i < dim; ++i) {
      (*pattern)[i] =
          static_cast<float>(static_cast<int8_t>(q_bytes[i])) * scale;
    }
  } else if (mode == kModeRawVar) {
    uint64_t size = 0;
    if (!reader->ReadVarint(&size)) {
      return common::IoResult::Fail("compact user: truncated pattern length");
    }
    if (size > kMaxPatternDim) {
      return common::IoResult::Fail("compact user: pattern length " +
                                    std::to_string(size) +
                                    " exceeds the cap");
    }
    if (!reader->ReadF32Array(size, pattern)) {
      return common::IoResult::Fail(
          "compact user: raw pattern larger than the remaining blob");
    }
  } else {
    return common::IoResult::Fail("compact user: unknown pattern mode " +
                                  std::to_string(mode));
  }
  return common::IoResult::Ok();
}

}  // namespace

void EncodeCompactUser(const OnlineAdapter::UserSnapshot& snap,
                       const CompactOptions& options, std::string* out,
                       CompactEncodeStats* stats) {
  uint64_t dim = 0;
  for (const auto& [location, entries] : snap.locations) {
    if (!entries.empty()) {
      dim = entries.front().pattern.size();
      break;
    }
  }
  // A pending-only user (dirty, nothing drained yet) still has a natural
  // dimension; taking it keeps q8 available for the buffered deltas.
  if (dim == 0 && !snap.pending.empty()) {
    dim = snap.pending.front().pattern.size();
  }
  common::AppendZigzag(out, snap.user);
  common::AppendVarint(out, dim);
  common::AppendVarint(out, snap.locations.size());
  int64_t prev_location = 0;
  common::QfloatBlock block;
  for (const auto& [location, entries] : snap.locations) {
    common::AppendZigzag(out, location - prev_location);
    prev_location = location;
    common::AppendVarint(out, entries.size());
    int64_t prev_timestamp = 0;
    for (const OnlineAdapter::Entry& entry : entries) {
      common::AppendZigzag(out, entry.timestamp - prev_timestamp);
      prev_timestamp = entry.timestamp;
      const bool quantized =
          AppendPattern(entry.pattern, dim, options, &block, out);
      if (stats != nullptr) {
        stats->patterns += 1;
        if (!quantized) stats->raw_patterns += 1;
      }
    }
    if (stats != nullptr) stats->locations += 1;
  }
  // Pending-delta section, present only for dirty users, so every
  // pending-free blob stays byte-identical to the pre-deferral encoding
  // (decoders treat end-of-blob after the locations as "no pending").
  // Layout per delta (arrival order): zigzag timestamp delta vs previous
  // delta, zigzag next location, then the shared mode byte + payload.
  if (snap.pending.empty()) return;
  common::AppendVarint(out, snap.pending.size());
  int64_t prev_timestamp = 0;
  for (const OnlineAdapter::PendingDelta& delta : snap.pending) {
    common::AppendZigzag(out, delta.timestamp - prev_timestamp);
    prev_timestamp = delta.timestamp;
    common::AppendZigzag(out, delta.next_location);
    const bool quantized =
        AppendPattern(delta.pattern, dim, options, &block, out);
    if (stats != nullptr) {
      stats->patterns += 1;
      if (!quantized) stats->raw_patterns += 1;
    }
  }
}

common::IoResult DecodeCompactUser(std::string_view bytes,
                                   OnlineAdapter::UserSnapshot* out) {
  out->locations.clear();
  out->pending.clear();
  common::WireReader reader(bytes);
  if (!reader.ReadZigzag(&out->user)) {
    return common::IoResult::Fail("compact user: truncated user id");
  }
  uint64_t dim = 0;
  if (!reader.ReadVarint(&dim)) {
    return common::IoResult::Fail("compact user: truncated pattern dim");
  }
  if (dim > kMaxPatternDim) {
    return common::IoResult::Fail("compact user: pattern dim " +
                                  std::to_string(dim) + " exceeds the cap");
  }
  uint64_t location_count = 0;
  if (!reader.ReadVarint(&location_count)) {
    return common::IoResult::Fail("compact user: truncated location count");
  }
  // A location record is at least 3 bytes (delta, count, one entry byte);
  // a count beyond remaining/3 is provably corrupt — reject pre-reserve.
  if (location_count > reader.remaining() / 3 + 1) {
    return common::IoResult::Fail(
        "compact user: location count " + std::to_string(location_count) +
        " larger than the blob could hold");
  }
  // dim may legitimately be 0 (the first entry's pattern is empty — the
  // store accepts patterns of any size); entries of other sizes carry
  // their own length via kModeRawVar.
  out->locations.reserve(location_count);
  int64_t prev_location = 0;
  for (uint64_t l = 0; l < location_count; ++l) {
    int64_t delta = 0;
    uint64_t entry_count = 0;
    if (!reader.ReadZigzag(&delta) || !reader.ReadVarint(&entry_count)) {
      return common::IoResult::Fail("compact user: truncated location record");
    }
    const int64_t location = prev_location + delta;
    // Strictly ascending ids are the encoder's invariant; a violation would
    // silently merge locations on Adopt, so reject it structurally.
    if (l > 0 && location <= prev_location) {
      return common::IoResult::Fail(
          "compact user: location ids not strictly ascending");
    }
    prev_location = location;
    if (entry_count == 0) {
      return common::IoResult::Fail("compact user: empty location record");
    }
    // An entry is at least timestamp + mode (payload may be empty).
    if (entry_count > reader.remaining() / 2 + 1) {
      return common::IoResult::Fail(
          "compact user: entry count " + std::to_string(entry_count) +
          " larger than the blob could hold");
    }
    std::vector<OnlineAdapter::Entry> entries;
    entries.reserve(entry_count);
    int64_t prev_timestamp = 0;
    for (uint64_t e = 0; e < entry_count; ++e) {
      OnlineAdapter::Entry entry;
      int64_t ts_delta = 0;
      if (!reader.ReadZigzag(&ts_delta)) {
        return common::IoResult::Fail("compact user: truncated entry header");
      }
      entry.timestamp = prev_timestamp + ts_delta;
      prev_timestamp = entry.timestamp;
      common::IoResult read = ReadPattern(&reader, dim, &entry.pattern);
      if (!read.ok) return read;
      entries.push_back(std::move(entry));
    }
    out->locations.emplace_back(location, std::move(entries));
  }
  // Pending-delta section: absent (end of blob — the pre-deferral layout
  // and every clean user) or a varint count followed by that many deltas.
  if (reader.AtEnd()) return common::IoResult::Ok();
  uint64_t pending_count = 0;
  if (!reader.ReadVarint(&pending_count)) {
    return common::IoResult::Fail("compact user: truncated pending count");
  }
  if (pending_count == 0) {
    // The encoder omits the section entirely when there is nothing pending;
    // an explicit zero is a corrupt (or trailing-garbage) blob.
    return common::IoResult::Fail("compact user: empty pending section");
  }
  // A pending delta is at least timestamp + location + mode (3 bytes).
  if (pending_count > reader.remaining() / 3 + 1) {
    return common::IoResult::Fail(
        "compact user: pending count " + std::to_string(pending_count) +
        " larger than the blob could hold");
  }
  out->pending.reserve(pending_count);
  int64_t prev_timestamp = 0;
  for (uint64_t p = 0; p < pending_count; ++p) {
    OnlineAdapter::PendingDelta delta;
    int64_t ts_delta = 0;
    if (!reader.ReadZigzag(&ts_delta) ||
        !reader.ReadZigzag(&delta.next_location)) {
      return common::IoResult::Fail(
          "compact user: truncated pending delta header");
    }
    delta.timestamp = prev_timestamp + ts_delta;
    prev_timestamp = delta.timestamp;
    common::IoResult read = ReadPattern(&reader, dim, &delta.pattern);
    if (!read.ok) return read;
    out->pending.push_back(std::move(delta));
  }
  if (!reader.AtEnd()) {
    return common::IoResult::Fail("compact user: trailing bytes");
  }
  return common::IoResult::Ok();
}

common::IoResult PeekCompactUser(std::string_view bytes, int64_t* user) {
  common::WireReader reader(bytes);
  if (!reader.ReadZigzag(user)) {
    return common::IoResult::Fail("compact user: truncated user id");
  }
  return common::IoResult::Ok();
}

}  // namespace adamove::shard
