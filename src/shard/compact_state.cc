#include "shard/compact_state.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/qfloat.h"

namespace adamove::shard {

namespace {

using core::OnlineAdapter;

constexpr uint8_t kModeRawF32 = 0;
constexpr uint8_t kModeQ8 = 1;
/// Raw f32 with an explicit per-entry length, for entries whose pattern
/// size differs from the header dimension (the store accepts any size).
constexpr uint8_t kModeRawVar = 2;

/// Dimension cap mirroring the durable layer's frame-size discipline: no
/// legitimate encoder hidden state is near this, so a larger on-wire value
/// is corruption, rejected before any allocation.
constexpr uint64_t kMaxPatternDim = 1u << 20;

/// True iff (block) decodes back to exactly `x` — the losslessness gate for
/// q8 storage.
bool Q8RoundTripsExactly(const std::vector<float>& x,
                         const common::QfloatBlock& block) {
  const float scale = std::ldexp(1.0f, block.exponent);
  for (size_t i = 0; i < x.size(); ++i) {
    if (static_cast<float>(block.q[i]) * scale != x[i]) return false;
  }
  return true;
}

}  // namespace

void EncodeCompactUser(const OnlineAdapter::UserSnapshot& snap,
                       const CompactOptions& options, std::string* out,
                       CompactEncodeStats* stats) {
  uint64_t dim = 0;
  for (const auto& [location, entries] : snap.locations) {
    if (!entries.empty()) {
      dim = entries.front().pattern.size();
      break;
    }
  }
  common::AppendZigzag(out, snap.user);
  common::AppendVarint(out, dim);
  common::AppendVarint(out, snap.locations.size());
  int64_t prev_location = 0;
  common::QfloatBlock block;
  for (const auto& [location, entries] : snap.locations) {
    common::AppendZigzag(out, location - prev_location);
    prev_location = location;
    common::AppendVarint(out, entries.size());
    int64_t prev_timestamp = 0;
    for (const OnlineAdapter::Entry& entry : entries) {
      common::AppendZigzag(out, entry.timestamp - prev_timestamp);
      prev_timestamp = entry.timestamp;
      const size_t size = entry.pattern.size();
      bool quantized = false;
      // q8 payloads are implicitly `dim` bytes, so only uniform-size
      // entries qualify; off-dimension entries fall through to the
      // explicit-length raw mode and the blob stays decodable.
      if (options.quantize && size == dim &&
          common::QfloatEncodable(entry.pattern.data(), size)) {
        common::QfloatEncode(entry.pattern.data(), size, &block);
        if (Q8RoundTripsExactly(entry.pattern, block)) {
          out->push_back(static_cast<char>(kModeQ8));
          common::AppendZigzag(out, block.exponent);
          out->append(reinterpret_cast<const char*>(block.q.data()),
                      block.q.size());
          quantized = true;
        }
      }
      if (!quantized) {
        if (size == dim) {
          out->push_back(static_cast<char>(kModeRawF32));
        } else {
          out->push_back(static_cast<char>(kModeRawVar));
          common::AppendVarint(out, size);
        }
        common::AppendF32Array(out, entry.pattern.data(), size);
      }
      if (stats != nullptr) {
        stats->patterns += 1;
        if (!quantized) stats->raw_patterns += 1;
      }
    }
    if (stats != nullptr) stats->locations += 1;
  }
}

common::IoResult DecodeCompactUser(std::string_view bytes,
                                   OnlineAdapter::UserSnapshot* out) {
  out->locations.clear();
  common::WireReader reader(bytes);
  if (!reader.ReadZigzag(&out->user)) {
    return common::IoResult::Fail("compact user: truncated user id");
  }
  uint64_t dim = 0;
  if (!reader.ReadVarint(&dim)) {
    return common::IoResult::Fail("compact user: truncated pattern dim");
  }
  if (dim > kMaxPatternDim) {
    return common::IoResult::Fail("compact user: pattern dim " +
                                  std::to_string(dim) + " exceeds the cap");
  }
  uint64_t location_count = 0;
  if (!reader.ReadVarint(&location_count)) {
    return common::IoResult::Fail("compact user: truncated location count");
  }
  // A location record is at least 3 bytes (delta, count, one entry byte);
  // a count beyond remaining/3 is provably corrupt — reject pre-reserve.
  if (location_count > reader.remaining() / 3 + 1) {
    return common::IoResult::Fail(
        "compact user: location count " + std::to_string(location_count) +
        " larger than the blob could hold");
  }
  // dim may legitimately be 0 (the first entry's pattern is empty — the
  // store accepts patterns of any size); entries of other sizes carry
  // their own length via kModeRawVar.
  out->locations.reserve(location_count);
  int64_t prev_location = 0;
  for (uint64_t l = 0; l < location_count; ++l) {
    int64_t delta = 0;
    uint64_t entry_count = 0;
    if (!reader.ReadZigzag(&delta) || !reader.ReadVarint(&entry_count)) {
      return common::IoResult::Fail("compact user: truncated location record");
    }
    const int64_t location = prev_location + delta;
    // Strictly ascending ids are the encoder's invariant; a violation would
    // silently merge locations on Adopt, so reject it structurally.
    if (l > 0 && location <= prev_location) {
      return common::IoResult::Fail(
          "compact user: location ids not strictly ascending");
    }
    prev_location = location;
    if (entry_count == 0) {
      return common::IoResult::Fail("compact user: empty location record");
    }
    // An entry is at least timestamp + mode (payload may be empty).
    if (entry_count > reader.remaining() / 2 + 1) {
      return common::IoResult::Fail(
          "compact user: entry count " + std::to_string(entry_count) +
          " larger than the blob could hold");
    }
    std::vector<OnlineAdapter::Entry> entries;
    entries.reserve(entry_count);
    int64_t prev_timestamp = 0;
    for (uint64_t e = 0; e < entry_count; ++e) {
      OnlineAdapter::Entry entry;
      int64_t ts_delta = 0;
      std::string_view mode_byte;
      if (!reader.ReadZigzag(&ts_delta) || !reader.ReadBytes(1, &mode_byte)) {
        return common::IoResult::Fail("compact user: truncated entry header");
      }
      entry.timestamp = prev_timestamp + ts_delta;
      prev_timestamp = entry.timestamp;
      const auto mode = static_cast<uint8_t>(mode_byte[0]);
      if (mode == kModeRawF32) {
        if (!reader.ReadF32Array(dim, &entry.pattern)) {
          return common::IoResult::Fail(
              "compact user: raw pattern larger than the remaining blob");
        }
      } else if (mode == kModeQ8) {
        int64_t exponent = 0;
        std::string_view q_bytes;
        if (!reader.ReadZigzag(&exponent) || !reader.ReadBytes(dim, &q_bytes)) {
          return common::IoResult::Fail(
              "compact user: q8 pattern larger than the remaining blob");
        }
        // Float exponents live in a narrow band; anything else is corrupt
        // (and would push ldexp into inf/0, breaking the exactness
        // contract).
        if (exponent < -160 || exponent > 140) {
          return common::IoResult::Fail("compact user: q8 exponent " +
                                        std::to_string(exponent) +
                                        " out of range");
        }
        const float scale =
            std::ldexp(1.0f, static_cast<int>(exponent));
        entry.pattern.resize(dim);
        for (uint64_t i = 0; i < dim; ++i) {
          entry.pattern[i] =
              static_cast<float>(static_cast<int8_t>(q_bytes[i])) * scale;
        }
      } else if (mode == kModeRawVar) {
        uint64_t size = 0;
        if (!reader.ReadVarint(&size)) {
          return common::IoResult::Fail(
              "compact user: truncated pattern length");
        }
        if (size > kMaxPatternDim) {
          return common::IoResult::Fail("compact user: pattern length " +
                                        std::to_string(size) +
                                        " exceeds the cap");
        }
        if (!reader.ReadF32Array(size, &entry.pattern)) {
          return common::IoResult::Fail(
              "compact user: raw pattern larger than the remaining blob");
        }
      } else {
        return common::IoResult::Fail("compact user: unknown pattern mode " +
                                      std::to_string(mode));
      }
      entries.push_back(std::move(entry));
    }
    out->locations.emplace_back(location, std::move(entries));
  }
  if (!reader.AtEnd()) {
    return common::IoResult::Fail("compact user: trailing bytes");
  }
  return common::IoResult::Ok();
}

common::IoResult PeekCompactUser(std::string_view bytes, int64_t* user) {
  common::WireReader reader(bytes);
  if (!reader.ReadZigzag(user)) {
    return common::IoResult::Fail("compact user: truncated user id");
  }
  return common::IoResult::Ok();
}

}  // namespace adamove::shard
