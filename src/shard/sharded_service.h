#ifndef ADAMOVE_SHARD_SHARDED_SERVICE_H_
#define ADAMOVE_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "core/model.h"
#include "core/ptta.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"
#include "shard/compact_store.h"
#include "shard/user_router.h"

namespace adamove::shard {

/// Initial shard-group count: the ADAMOVE_NUM_SHARDS environment override,
/// falling back to 2 (README "Capacity tuning").
int DefaultNumShards();

struct ShardedServiceConfig {
  /// Shard groups created at construction (ids 0..num_shards-1). Grow or
  /// shrink later with AddShard / RemoveShard.
  int num_shards = 2;
  RouterConfig router;
  /// Per-group serving config (each group runs its own PredictionService
  /// with `service.workers` threads).
  serve::ServiceConfig service;
  /// Per-group session-store config. `cold_tier` and
  /// `canonicalize_patterns` are owned by this layer: each group gets its
  /// own CompactStore cold tier (unless `cold_tier` below is false), and
  /// canonical ingest is switched on whenever quantized compact storage is.
  serve::SessionStoreConfig store;
  CompactStoreConfig compact;
  /// Attach a CompactStore behind every group's session store, turning the
  /// LRU cap into a hot-tier bound instead of a forget threshold.
  bool cold_tier = true;
};

/// Consistent-hash sharded serving (DESIGN.md §12): a UserRouter in front
/// of N in-process shard groups, each group owning one CompactStore (cold
/// tier), one SessionStore (hot tier) and one PredictionService. The router
/// places every user deterministically; topology changes move a bounded
/// set of users (~K/N) through an explicit migration protocol.
///
/// Rebalance protocol (pinned by tests/shard/sharded_service_test):
///   1. under the routing mutex: build the next ring, mark every known user
///      whose placement changes as in-transit, swap the ring and bump the
///      ring generation;
///   2. requests admitted from now on route by the new ring; any user whose
///      placement differs between the old and new rings is served
///      frozen-only (kDegraded — valid base-model scores, no state writes
///      on the wrong group). The old-vs-new comparison, not the in-transit
///      set, is the freeze predicate, so it also covers users the swap-time
///      scan could not see because their first-ever request was still in
///      flight;
///   3. wait until every request admitted to the source group under a
///      pre-swap ring generation has completed. Each group keeps in-flight
///      counts keyed by admission generation, decremented by a per-request
///      completion hook — the barrier is per-generation, so out-of-order
///      completions of post-swap requests can never satisfy it on behalf of
///      a pre-swap request still in flight;
///   4. re-derive the moved set from what the source group owns *now*
///      (state created by late pre-swap requests included), move each
///      user's complete state (hot or cold) to its new group and clear the
///      in-transit marks — the users resume the adapted path.
/// Requests in flight across the swap therefore resolve to exactly kOk
/// (admitted before the swap, state still on the source) or kDegraded
/// (admitted after, frozen-only) — never a crash, never forked state.
///
/// Topology changes are serialized: AddShard/RemoveShard hold a dedicated
/// admin mutex across the whole swap→drain→migrate sequence, so a
/// migration's target group can never be concurrently marked draining.
/// Admission itself never blocks under a lock — Submit resolves routing
/// under the routing mutex but performs the (potentially blocking,
/// OverflowPolicy::kBlock) enqueue after releasing it, keeping one full
/// group from stalling admissions to the others.
///
/// Removed groups are drained (their PredictionService keeps running with
/// nothing routed to it) and destroyed only at Shutdown, so a raw Group
/// pointer obtained at admission never dangles.
class ShardedService {
 public:
  /// Per-group capacity and serving counters.
  struct GroupStats {
    int shard_id = 0;
    bool draining = false;
    serve::ServiceStats service;
    size_t hot_users = 0;
    size_t cold_users = 0;
    /// Dense bytes of hot-resident state (OnlineAdapter accounting).
    size_t hot_bytes = 0;
    /// Compact payload bytes of cold state.
    uint64_t cold_blob_bytes = 0;
    /// Arena bytes actually reserved for the cold tier (slabs + oversize).
    uint64_t cold_reserved_bytes = 0;
    uint64_t hydrations = 0;
    uint64_t dehydrations = 0;
    /// Elastic-adaptation backlog (DESIGN.md §16): hot-resident users with
    /// buffered pending deltas, and the deltas themselves. Migration and
    /// dehydration carry this state losslessly, so it is a live gauge, not
    /// a loss counter.
    size_t dirty_users = 0;
    size_t pending_deltas = 0;
  };

  ShardedService(core::AdaptableModel& model,
                 const ShardedServiceConfig& config);
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Routes and enqueues one request. In-transit users (and every request
  /// while a `serve.router_lookup` fault fires) are admitted frozen-only:
  /// valid base-model scores, kDegraded, no state touched.
  std::future<serve::Prediction> Submit(data::Sample sample);

  /// Adds a shard group, migrating the users the new ring assigns to it.
  /// Returns the new shard id. Topology changes are serialized against
  /// each other (safe to call from any thread, including while serving).
  int AddShard();

  /// Drains and removes a shard group, migrating all of its users to their
  /// new owners. False (and no change) for an unknown/draining id or when
  /// it is the last live shard. Serialized like AddShard.
  bool RemoveShard(int shard_id);

  /// Live (non-draining) shard ids, ascending.
  std::vector<int> Shards() const;

  /// Current placement of a user (live ring).
  int ShardFor(int64_t user) const;

  /// Per-group stats, live groups first, then drained ones, each ascending
  /// by shard id.
  std::vector<GroupStats> Stats() const;

  /// Aggregate capacity diagnostics across live groups, reported through
  /// the core stats type: resident_bytes = hot dense bytes + cold compact
  /// payload bytes (the number BENCH_capacity.json divides by users).
  core::AdapterStats CapacityStats() const;

  /// Persists every live group to `<prefix>.shard<ID>.hot` (SessionStore
  /// snapshot) and `<prefix>.shard<ID>.cold` (CompactStore file), one
  /// atomic durable_io commit per file. First failure aborts the pass.
  common::IoResult Snapshot(const std::string& prefix) const;

  /// Restores groups written by Snapshot with the same prefix and shard
  /// ids. Missing files fail; per-file torn tails follow the underlying
  /// readers' semantics.
  common::IoResult Restore(const std::string& prefix);

  /// Users currently marked in-transit (0 in steady state).
  size_t InTransitCount() const;

  uint64_t MigratedUsers() const {
    return migrated_users_.load(std::memory_order_relaxed);
  }

  /// Requests admitted through the router-fault fallback path.
  uint64_t RouterFallbacks() const {
    return router_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Stops every group's service (drained groups included). Idempotent;
  /// also run by the destructor.
  void Shutdown();

 private:
  struct Group {
    int shard_id = 0;
    /// Mutated only under the routing mutex (the group object itself lives
    /// until Shutdown, so pointers to it never dangle).
    bool draining = false;
    /// In-flight requests keyed by the ring generation they were admitted
    /// under. Incremented at admission (inflight_mu nests inside mu_),
    /// decremented by the per-request completion hook; an entry is erased
    /// when its count reaches zero, so begin() is the oldest generation
    /// still in flight — exactly what WaitDrained polls.
    mutable common::Mutex inflight_mu;
    std::map<uint64_t, uint64_t> inflight ADAMOVE_GUARDED_BY(inflight_mu);
    std::unique_ptr<CompactStore> cold;
    std::unique_ptr<serve::SessionStore> store;
    std::unique_ptr<serve::PredictionService> service;
  };

  std::unique_ptr<Group> MakeGroup(int shard_id);
  Group* LiveGroupLocked(int shard_id) const ADAMOVE_REQUIRES(mu_);
  /// All users a group owns, hot and cold, ascending and deduplicated.
  static std::vector<int64_t> OwnedUsers(const Group& group);
  /// Blocks until no request admitted to `group` under a generation
  /// <= `gen_barrier` is still in flight (rebalance protocol step 3).
  static void WaitDrained(const Group& group, uint64_t gen_barrier);
  /// Moves every user the (drained) group owns but the current ring places
  /// elsewhere to its owner, clearing in-transit marks as state lands.
  /// Call with admin_mu_ held but not mu_.
  void MigrateMisplaced(Group& source);

  core::AdaptableModel& model_;
  ShardedServiceConfig config_;

  /// Serializes AddShard/RemoveShard end to end. Lock order:
  /// admin_mu_ -> mu_ -> Group::inflight_mu (each optional, never inverted).
  common::Mutex admin_mu_;

  mutable common::Mutex mu_;
  /// Copy-on-write ring: swapped whole under mu_, never mutated in place.
  std::shared_ptr<const UserRouter> router_ ADAMOVE_GUARDED_BY(mu_);
  /// The pre-swap ring, non-null only while a rebalance is migrating: a
  /// user the two rings place differently is served frozen-only (protocol
  /// step 2).
  std::shared_ptr<const UserRouter> prev_router_ ADAMOVE_GUARDED_BY(mu_);
  /// Bumped at every ring swap; admissions are tagged with the generation
  /// they observed.
  uint64_t ring_gen_ ADAMOVE_GUARDED_BY(mu_) = 0;
  /// All groups ever created (draining ones included — see class comment).
  std::vector<std::unique_ptr<Group>> groups_ ADAMOVE_GUARDED_BY(mu_);
  std::unordered_set<int64_t> in_transit_ ADAMOVE_GUARDED_BY(mu_);
  int next_shard_id_ ADAMOVE_GUARDED_BY(mu_) = 0;
  bool shutdown_ ADAMOVE_GUARDED_BY(mu_) = false;

  /// Admissions past the shutdown_ check whose enqueue (outside mu_) has
  /// not landed yet; Shutdown waits for zero before stopping the services.
  std::atomic<size_t> admitting_{0};

  std::atomic<uint64_t> migrated_users_{0};
  std::atomic<uint64_t> router_fallbacks_{0};
};

}  // namespace adamove::shard

#endif  // ADAMOVE_SHARD_SHARDED_SERVICE_H_
