#ifndef ADAMOVE_SHARD_USER_ROUTER_H_
#define ADAMOVE_SHARD_USER_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adamove::shard {

struct RouterConfig {
  /// Virtual nodes per shard on the hash ring. More vnodes smooth the load
  /// split (relative imbalance ~ 1/sqrt(vnodes)) at the cost of a larger
  /// ring to binary-search; 64 keeps worst-shard load within a few percent
  /// of fair for the shard counts we run.
  int virtual_nodes = 64;
};

/// Consistent-hash placement of users onto shard ids (DESIGN.md §12).
///
/// Each shard contributes `virtual_nodes` points to a ring of 64-bit hash
/// positions; a user is owned by the first shard point clockwise of the
/// user's own hash. Two properties the shard subsystem leans on, both
/// pinned by tests/shard/user_router_test:
///
///   * Deterministic placement: all hashing is a fixed splitmix64-style
///     finalizer over (shard id, replica) and user id — never std::hash —
///     so a ring built from the same shard set places every user
///     identically in every process, across restarts and machines. Routing
///     state needs no persistence at all.
///   * Bounded movement: adding (removing) one shard to (from) a ring of N
///     moves only the users whose arc the new points capture — in
///     expectation K/N of K users — instead of rehashing nearly everything
///     the way `hash(user) % N` does.
///
/// The router is a plain value type with no internal locking. The shard
/// layer treats a built router as immutable and swaps a fresh copy in under
/// its admin mutex on topology changes (copy-on-write), so lookups never
/// race mutations.
class UserRouter {
 public:
  explicit UserRouter(const RouterConfig& config = {});

  /// Adds a shard's virtual nodes to the ring. Aborts if already present.
  void AddShard(int shard_id);

  /// Removes a shard from the ring. Aborts if absent.
  void RemoveShard(int shard_id);

  bool HasShard(int shard_id) const;

  /// Owning shard of `user`. Aborts on an empty ring — routing with no
  /// shards is a topology bug, not a request-time condition.
  int ShardFor(int64_t user) const;

  /// Shard ids on the ring, ascending.
  std::vector<int> Shards() const { return shard_ids_; }

  size_t NumShards() const { return shard_ids_.size(); }

  /// The ring position of a user — exposed so tests can reason about arcs.
  static uint64_t HashUser(int64_t user);

 private:
  void RebuildRing();

  RouterConfig config_;
  std::vector<int> shard_ids_;  // ascending
  /// (ring position, shard id), sorted — the binary-searched ring.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace adamove::shard

#endif  // ADAMOVE_SHARD_USER_ROUTER_H_
