#include "shard/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"

namespace adamove::shard {

int DefaultNumShards() { return common::EnvInt("ADAMOVE_NUM_SHARDS", 2); }

ShardedService::ShardedService(core::AdaptableModel& model,
                               const ShardedServiceConfig& config)
    : model_(model), config_(config) {
  ADAMOVE_CHECK_GT(config_.num_shards, 0);
  common::MutexLock lock(mu_);
  auto router = std::make_shared<UserRouter>(config_.router);
  for (int i = 0; i < config_.num_shards; ++i) {
    const int shard_id = next_shard_id_++;
    groups_.push_back(MakeGroup(shard_id));
    router->AddShard(shard_id);
  }
  router_ = std::move(router);
}

ShardedService::~ShardedService() { Shutdown(); }

std::unique_ptr<ShardedService::Group> ShardedService::MakeGroup(
    int shard_id) {
  auto group = std::make_unique<Group>();
  group->shard_id = shard_id;
  serve::SessionStoreConfig store_config = config_.store;
  if (config_.cold_tier) {
    group->cold = std::make_unique<CompactStore>(config_.compact);
    store_config.cold_tier = group->cold.get();
    // Canonical ingest makes every stored pattern exactly quantizable, so
    // dehydrate→rehydrate cycles through the q8 compact form are
    // bit-identical (compact_state.h).
    store_config.canonicalize_patterns = config_.compact.options.quantize;
  }
  group->store = std::make_unique<serve::SessionStore>(store_config);
  group->service = std::make_unique<serve::PredictionService>(
      model_, *group->store, config_.service);
  return group;
}

ShardedService::Group* ShardedService::LiveGroupLocked(int shard_id) const {
  for (const auto& group : groups_) {
    if (group->shard_id == shard_id && !group->draining) return group.get();
  }
  return nullptr;
}

std::future<serve::Prediction> ShardedService::Submit(data::Sample sample) {
  Group* group = nullptr;
  bool frozen_only = false;
  uint64_t gen = 0;
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!shutdown_);
    // Simulated routing failure (stale ring read, mis-route): the request
    // is admitted to a deterministic fallback group frozen-only — valid
    // base-model scores, kDegraded, and crucially no state is created on a
    // group that may not own the user.
    if (common::FaultPoint("serve.router_lookup")) {
      for (const auto& g : groups_) {
        if (!g->draining) {
          group = g.get();
          break;
        }
      }
      frozen_only = true;
      router_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      group = LiveGroupLocked(router_->ShardFor(sample.user));
      // A user mid-rebalance is served frozen-only until its state lands
      // on the new owner (protocol step 2). Comparing rings — rather than
      // consulting the in-transit set — also freezes users whose first
      // request was in flight at the swap and who therefore could not be
      // marked.
      frozen_only = prev_router_ != nullptr &&
                    prev_router_->ShardFor(sample.user) !=
                        router_->ShardFor(sample.user);
    }
    ADAMOVE_CHECK(group != nullptr);
    gen = ring_gen_;
    {
      common::MutexLock inflight_lock(group->inflight_mu);
      group->inflight[gen] += 1;
    }
    admitting_.fetch_add(1);
  }
  // The enqueue happens outside mu_ (it may block on a full queue under
  // OverflowPolicy::kBlock, and must not stall other groups' admissions or
  // admin operations). The group outlives admission and its in-flight
  // entry is already recorded, so the drain barrier covers this request
  // even though the enqueue itself races the ring swap.
  auto on_complete = [group, gen] {
    common::MutexLock lock(group->inflight_mu);
    const auto it = group->inflight.find(gen);
    ADAMOVE_CHECK(it != group->inflight.end());
    ADAMOVE_CHECK_GT(it->second, 0u);
    if (--it->second == 0) group->inflight.erase(it);
  };
  std::future<serve::Prediction> result =
      frozen_only ? group->service->SubmitFrozen(std::move(sample),
                                                 std::move(on_complete))
                  : group->service->Submit(std::move(sample),
                                           std::move(on_complete));
  admitting_.fetch_sub(1);
  return result;
}

std::vector<int64_t> ShardedService::OwnedUsers(const Group& group) {
  std::vector<int64_t> users = group.store->ResidentUsers();
  if (group.cold != nullptr) {
    const std::vector<int64_t> cold_users = group.cold->Users();
    users.insert(users.end(), cold_users.begin(), cold_users.end());
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

void ShardedService::WaitDrained(const Group& group, uint64_t gen_barrier) {
  // Per-generation in-flight counts, not the aggregate accounted() ledger:
  // the source group keeps admitting (and completing, out of order) new
  // requests after the swap, so only a barrier that identifies pre-swap
  // admissions proves they have all resolved. The map's oldest generation
  // must itself move past the barrier.
  for (;;) {
    {
      common::MutexLock lock(group.inflight_mu);
      const auto oldest = group.inflight.begin();
      if (oldest == group.inflight.end() || oldest->first > gen_barrier) {
        return;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ShardedService::MigrateMisplaced(Group& source) {
  // The moved set is re-derived after the drain from what the group owns
  // *now*: a pre-swap request that was the first ever for its user created
  // state the swap-time scan could not see, and it must move too or a later
  // rebalance would re-inject it over a fresher copy.
  for (int64_t user : OwnedUsers(source)) {
    Group* target = nullptr;
    {
      common::MutexLock lock(mu_);
      const int target_id = router_->ShardFor(user);
      if (!source.draining && target_id == source.shard_id) continue;
      target = LiveGroupLocked(target_id);
    }
    // admin_mu_ is held by our caller, so no concurrent topology change can
    // mark `target` draining between the lookup and the inject.
    ADAMOVE_CHECK(target != nullptr);
    core::OnlineAdapter::UserSnapshot snap;
    if (source.store->ExtractUser(user, &snap)) {
      target->store->InjectUser(std::move(snap));
      migrated_users_.fetch_add(1, std::memory_order_relaxed);
    }
    common::MutexLock lock(mu_);
    in_transit_.erase(user);
  }
}

int ShardedService::AddShard() {
  // One topology change at a time, held across swap→drain→migrate: the
  // target a migration injects into can never be concurrently drained.
  common::MutexLock admin_lock(admin_mu_);
  int shard_id = 0;
  uint64_t barrier = 0;
  std::vector<Group*> sources;
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!shutdown_);
    shard_id = next_shard_id_++;
    groups_.push_back(MakeGroup(shard_id));
    auto next = std::make_shared<UserRouter>(*router_);
    next->AddShard(shard_id);
    // Known users the new ring hands to the new shard (~K/N of them — the
    // consistent-hash movement bound) go in transit before the swap. Every
    // pre-existing live group is a drain source: state for users the scan
    // could not see (first request still in flight) may surface on any of
    // them, and MigrateMisplaced re-derives the moved set after the drain.
    for (const auto& group : groups_) {
      if (group->draining || group->shard_id == shard_id) continue;
      for (int64_t user : OwnedUsers(*group)) {
        if (next->ShardFor(user) == shard_id) in_transit_.insert(user);
      }
      sources.push_back(group.get());
    }
    prev_router_ = router_;
    router_ = std::move(next);
    barrier = ring_gen_++;  // pre-swap admissions carry gen <= barrier
  }
  for (Group* source : sources) {
    WaitDrained(*source, barrier);
    MigrateMisplaced(*source);
  }
  common::MutexLock lock(mu_);
  prev_router_.reset();
  return shard_id;
}

bool ShardedService::RemoveShard(int shard_id) {
  common::MutexLock admin_lock(admin_mu_);  // see AddShard
  Group* source = nullptr;
  uint64_t barrier = 0;
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!shutdown_);
    source = LiveGroupLocked(shard_id);
    if (source == nullptr) return false;
    size_t live = 0;
    for (const auto& group : groups_) {
      if (!group->draining) ++live;
    }
    if (live <= 1) return false;  // routing needs at least one shard
    source->draining = true;
    auto next = std::make_shared<UserRouter>(*router_);
    next->RemoveShard(shard_id);
    for (int64_t user : OwnedUsers(*source)) in_transit_.insert(user);
    prev_router_ = router_;
    router_ = std::move(next);
    barrier = ring_gen_++;
  }
  // The swap already unroutes the group; once its pre-swap requests have
  // completed, every user it still holds moves to its new owner. The
  // drained group's service keeps running (empty) until Shutdown so
  // admission-time pointers never dangle.
  WaitDrained(*source, barrier);
  MigrateMisplaced(*source);
  common::MutexLock lock(mu_);
  prev_router_.reset();
  return true;
}

std::vector<int> ShardedService::Shards() const {
  common::MutexLock lock(mu_);
  return router_->Shards();
}

int ShardedService::ShardFor(int64_t user) const {
  common::MutexLock lock(mu_);
  return router_->ShardFor(user);
}

size_t ShardedService::InTransitCount() const {
  common::MutexLock lock(mu_);
  return in_transit_.size();
}

std::vector<ShardedService::GroupStats> ShardedService::Stats() const {
  std::vector<GroupStats> all;
  common::MutexLock lock(mu_);
  all.reserve(groups_.size());
  for (const auto& group : groups_) {
    GroupStats s;
    s.shard_id = group->shard_id;
    s.draining = group->draining;
    s.service = group->service->Stats();
    s.hot_users = group->store->UserCount();
    s.hot_bytes = group->store->ResidentBytes();
    s.hydrations = group->store->HydrationCount();
    s.dehydrations = group->store->DehydrationCount();
    s.dirty_users = group->store->DirtyUserCount();
    s.pending_deltas = group->store->PendingDeltaCount();
    if (group->cold != nullptr) {
      const CompactStore::Stats cold = group->cold->GetStats();
      s.cold_users = cold.users;
      s.cold_blob_bytes = cold.blob_bytes;
      s.cold_reserved_bytes = cold.arena.reserved_bytes;
    }
    all.push_back(std::move(s));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const GroupStats& a, const GroupStats& b) {
                     if (a.draining != b.draining) return !a.draining;
                     return a.shard_id < b.shard_id;
                   });
  return all;
}

core::AdapterStats ShardedService::CapacityStats() const {
  core::AdapterStats stats;
  for (const GroupStats& s : Stats()) {
    if (s.draining) continue;
    stats.resident_bytes += static_cast<int64_t>(s.hot_bytes) +
                            static_cast<int64_t>(s.cold_blob_bytes);
  }
  return stats;
}

common::IoResult ShardedService::Snapshot(const std::string& prefix) const {
  // Collect the live groups under the lock, run the (slow, fault-prone)
  // file commits outside it — group objects outlive Shutdown only, and
  // Snapshot racing Shutdown is excluded by the caller contract.
  std::vector<Group*> live;
  {
    common::MutexLock lock(mu_);
    for (const auto& group : groups_) {
      if (!group->draining) live.push_back(group.get());
    }
  }
  for (Group* group : live) {
    const std::string base =
        prefix + ".shard" + std::to_string(group->shard_id);
    common::IoResult hot = group->store->Snapshot(base + ".hot");
    if (!hot) return hot;
    if (group->cold != nullptr) {
      common::IoResult cold = group->cold->Save(base + ".cold");
      if (!cold) return cold;
    }
  }
  return common::IoResult::Ok();
}

common::IoResult ShardedService::Restore(const std::string& prefix) {
  std::vector<Group*> live;
  {
    common::MutexLock lock(mu_);
    for (const auto& group : groups_) {
      if (!group->draining) live.push_back(group.get());
    }
  }
  for (Group* group : live) {
    const std::string base =
        prefix + ".shard" + std::to_string(group->shard_id);
    common::IoResult hot = group->store->Restore(base + ".hot");
    if (!hot) return hot;
    if (group->cold != nullptr) {
      common::IoResult cold = group->cold->Load(base + ".cold");
      if (!cold) return cold;
    }
  }
  return common::IoResult::Ok();
}

void ShardedService::Shutdown() {
  std::vector<Group*> all;
  {
    common::MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (const auto& group : groups_) all.push_back(group.get());
  }
  // Admissions that passed the shutdown_ check under mu_ may still be
  // enqueuing outside the lock; let them land before the services stop.
  while (admitting_.load() != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Outside the lock: Shutdown drains each group's queue (admission is
  // already closed by the shutdown_ flag above).
  for (Group* group : all) group->service->Shutdown();
}

}  // namespace adamove::shard
