#include "shard/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"

namespace adamove::shard {

int DefaultNumShards() { return common::EnvInt("ADAMOVE_NUM_SHARDS", 2); }

ShardedService::ShardedService(core::AdaptableModel& model,
                               const ShardedServiceConfig& config)
    : model_(model), config_(config) {
  ADAMOVE_CHECK_GT(config_.num_shards, 0);
  common::MutexLock lock(mu_);
  auto router = std::make_shared<UserRouter>(config_.router);
  for (int i = 0; i < config_.num_shards; ++i) {
    const int shard_id = next_shard_id_++;
    groups_.push_back(MakeGroup(shard_id));
    router->AddShard(shard_id);
  }
  router_ = std::move(router);
}

ShardedService::~ShardedService() { Shutdown(); }

std::unique_ptr<ShardedService::Group> ShardedService::MakeGroup(
    int shard_id) {
  auto group = std::make_unique<Group>();
  group->shard_id = shard_id;
  serve::SessionStoreConfig store_config = config_.store;
  if (config_.cold_tier) {
    group->cold = std::make_unique<CompactStore>(config_.compact);
    store_config.cold_tier = group->cold.get();
    // Canonical ingest makes every stored pattern exactly quantizable, so
    // dehydrate→rehydrate cycles through the q8 compact form are
    // bit-identical (compact_state.h).
    store_config.canonicalize_patterns = config_.compact.options.quantize;
  }
  group->store = std::make_unique<serve::SessionStore>(store_config);
  group->service = std::make_unique<serve::PredictionService>(
      model_, *group->store, config_.service);
  return group;
}

ShardedService::Group* ShardedService::LiveGroupLocked(int shard_id) const {
  for (const auto& group : groups_) {
    if (group->shard_id == shard_id && !group->draining) return group.get();
  }
  return nullptr;
}

std::future<serve::Prediction> ShardedService::Submit(data::Sample sample) {
  common::MutexLock lock(mu_);
  ADAMOVE_CHECK(!shutdown_);
  Group* group = nullptr;
  bool frozen_only = false;
  // Simulated routing failure (stale ring read, mis-route): the request is
  // admitted to a deterministic fallback group frozen-only — valid
  // base-model scores, kDegraded, and crucially no state is created on a
  // group that may not own the user.
  if (common::FaultPoint("serve.router_lookup")) {
    for (const auto& g : groups_) {
      if (!g->draining) {
        group = g.get();
        break;
      }
    }
    frozen_only = true;
    router_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  } else {
    group = LiveGroupLocked(router_->ShardFor(sample.user));
    // A user mid-migration is served frozen-only until its state lands on
    // the new owner (rebalance protocol step 2).
    frozen_only = in_transit_.count(sample.user) > 0;
  }
  ADAMOVE_CHECK(group != nullptr);
  group->submitted += 1;
  // Admission happens under the admin mutex (so it is ordered against ring
  // swaps); batch formation and execution run in the group's own workers.
  return frozen_only ? group->service->SubmitFrozen(std::move(sample))
                     : group->service->Submit(std::move(sample));
}

std::vector<int64_t> ShardedService::OwnedUsers(const Group& group) {
  std::vector<int64_t> users = group.store->ResidentUsers();
  if (group.cold != nullptr) {
    const std::vector<int64_t> cold_users = group.cold->Users();
    users.insert(users.end(), cold_users.begin(), cold_users.end());
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

void ShardedService::WaitDrained(const Group& group,
                                 uint64_t submitted_barrier) {
  // accounted() is monotone and counts every admitted request exactly once
  // (the availability ledger), so reaching the barrier proves every
  // pre-swap request of this group has fully resolved.
  while (group.service->Stats().accounted() < submitted_barrier) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ShardedService::MigrateUsers(const std::vector<int64_t>& users,
                                  Group& source) {
  for (int64_t user : users) {
    core::OnlineAdapter::UserSnapshot snap;
    if (source.store->ExtractUser(user, &snap)) {
      Group* target = nullptr;
      {
        common::MutexLock lock(mu_);
        target = LiveGroupLocked(router_->ShardFor(user));
      }
      ADAMOVE_CHECK(target != nullptr);
      target->store->InjectUser(std::move(snap));
      migrated_users_.fetch_add(1, std::memory_order_relaxed);
    }
    common::MutexLock lock(mu_);
    in_transit_.erase(user);
  }
}

int ShardedService::AddShard() {
  int shard_id = 0;
  std::vector<std::pair<Group*, uint64_t>> sources;  // group, drain barrier
  std::vector<std::vector<int64_t>> moved;           // aligned with sources
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!shutdown_);
    shard_id = next_shard_id_++;
    groups_.push_back(MakeGroup(shard_id));
    auto next = std::make_shared<UserRouter>(*router_);
    next->AddShard(shard_id);
    // Users the new ring hands to the new shard (~K/N of them — the
    // consistent-hash movement bound) go in transit before the swap, so no
    // post-swap request can touch their state mid-move.
    for (const auto& group : groups_) {
      if (group->draining || group->shard_id == shard_id) continue;
      std::vector<int64_t> from_group;
      for (int64_t user : OwnedUsers(*group)) {
        if (next->ShardFor(user) != shard_id) continue;
        from_group.push_back(user);
        in_transit_.insert(user);
      }
      if (!from_group.empty()) {
        sources.emplace_back(group.get(), group->submitted);
        moved.push_back(std::move(from_group));
      }
    }
    router_ = std::move(next);
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    WaitDrained(*sources[i].first, sources[i].second);
    MigrateUsers(moved[i], *sources[i].first);
  }
  return shard_id;
}

bool ShardedService::RemoveShard(int shard_id) {
  Group* source = nullptr;
  uint64_t barrier = 0;
  std::vector<int64_t> moved;
  {
    common::MutexLock lock(mu_);
    ADAMOVE_CHECK(!shutdown_);
    source = LiveGroupLocked(shard_id);
    if (source == nullptr) return false;
    size_t live = 0;
    for (const auto& group : groups_) {
      if (!group->draining) ++live;
    }
    if (live <= 1) return false;  // routing needs at least one shard
    source->draining = true;
    auto next = std::make_shared<UserRouter>(*router_);
    next->RemoveShard(shard_id);
    moved = OwnedUsers(*source);
    for (int64_t user : moved) in_transit_.insert(user);
    router_ = std::move(next);
    barrier = source->submitted;
  }
  // The swap already unroutes the group; once its pre-swap requests have
  // accounted, every user moves to its new owner. The drained group's
  // service keeps running (empty) until Shutdown so admission-time pointers
  // never dangle.
  WaitDrained(*source, barrier);
  MigrateUsers(moved, *source);
  return true;
}

std::vector<int> ShardedService::Shards() const {
  common::MutexLock lock(mu_);
  return router_->Shards();
}

int ShardedService::ShardFor(int64_t user) const {
  common::MutexLock lock(mu_);
  return router_->ShardFor(user);
}

size_t ShardedService::InTransitCount() const {
  common::MutexLock lock(mu_);
  return in_transit_.size();
}

std::vector<ShardedService::GroupStats> ShardedService::Stats() const {
  std::vector<GroupStats> all;
  common::MutexLock lock(mu_);
  all.reserve(groups_.size());
  for (const auto& group : groups_) {
    GroupStats s;
    s.shard_id = group->shard_id;
    s.draining = group->draining;
    s.service = group->service->Stats();
    s.hot_users = group->store->UserCount();
    s.hot_bytes = group->store->ResidentBytes();
    s.hydrations = group->store->HydrationCount();
    s.dehydrations = group->store->DehydrationCount();
    if (group->cold != nullptr) {
      const CompactStore::Stats cold = group->cold->GetStats();
      s.cold_users = cold.users;
      s.cold_blob_bytes = cold.blob_bytes;
      s.cold_reserved_bytes = cold.arena.reserved_bytes;
    }
    all.push_back(std::move(s));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const GroupStats& a, const GroupStats& b) {
                     if (a.draining != b.draining) return !a.draining;
                     return a.shard_id < b.shard_id;
                   });
  return all;
}

core::AdapterStats ShardedService::CapacityStats() const {
  core::AdapterStats stats;
  for (const GroupStats& s : Stats()) {
    if (s.draining) continue;
    stats.resident_bytes += static_cast<int64_t>(s.hot_bytes) +
                            static_cast<int64_t>(s.cold_blob_bytes);
  }
  return stats;
}

common::IoResult ShardedService::Snapshot(const std::string& prefix) const {
  // Collect the live groups under the lock, run the (slow, fault-prone)
  // file commits outside it — group objects outlive Shutdown only, and
  // Snapshot racing Shutdown is excluded by the caller contract.
  std::vector<Group*> live;
  {
    common::MutexLock lock(mu_);
    for (const auto& group : groups_) {
      if (!group->draining) live.push_back(group.get());
    }
  }
  for (Group* group : live) {
    const std::string base =
        prefix + ".shard" + std::to_string(group->shard_id);
    common::IoResult hot = group->store->Snapshot(base + ".hot");
    if (!hot) return hot;
    if (group->cold != nullptr) {
      common::IoResult cold = group->cold->Save(base + ".cold");
      if (!cold) return cold;
    }
  }
  return common::IoResult::Ok();
}

common::IoResult ShardedService::Restore(const std::string& prefix) {
  std::vector<Group*> live;
  {
    common::MutexLock lock(mu_);
    for (const auto& group : groups_) {
      if (!group->draining) live.push_back(group.get());
    }
  }
  for (Group* group : live) {
    const std::string base =
        prefix + ".shard" + std::to_string(group->shard_id);
    common::IoResult hot = group->store->Restore(base + ".hot");
    if (!hot) return hot;
    if (group->cold != nullptr) {
      common::IoResult cold = group->cold->Load(base + ".cold");
      if (!cold) return cold;
    }
  }
  return common::IoResult::Ok();
}

void ShardedService::Shutdown() {
  std::vector<Group*> all;
  {
    common::MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (const auto& group : groups_) all.push_back(group.get());
  }
  // Outside the lock: Shutdown drains each group's queue (admission is
  // already closed by the shutdown_ flag above).
  for (Group* group : all) group->service->Shutdown();
}

}  // namespace adamove::shard
