#include "shard/user_router.h"

#include <algorithm>

#include "common/check.h"

namespace adamove::shard {

namespace {

/// splitmix64 finalizer — the same fixed bijective mixer the fault registry
/// uses for deterministic decisions. Never std::hash: its result is
/// implementation-defined, which would silently break cross-process
/// placement determinism.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Ring position of one (shard, replica) virtual node. Domain-separated
/// from user hashes by a fixed salt so a user id can never collide with a
/// vnode by construction of the inputs alone.
uint64_t VnodePosition(int shard_id, int replica) {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(shard_id))
                        << 32) |
                       static_cast<uint32_t>(replica);
  return Mix(key ^ 0x5348415244414441ULL);  // "SHARDADA"
}

}  // namespace

UserRouter::UserRouter(const RouterConfig& config) : config_(config) {
  ADAMOVE_CHECK_GT(config_.virtual_nodes, 0);
}

uint64_t UserRouter::HashUser(int64_t user) {
  return Mix(static_cast<uint64_t>(user) ^ 0x5553455241444121ULL);  // "USERADA!"
}

void UserRouter::AddShard(int shard_id) {
  ADAMOVE_CHECK(!HasShard(shard_id));
  shard_ids_.insert(
      std::upper_bound(shard_ids_.begin(), shard_ids_.end(), shard_id),
      shard_id);
  RebuildRing();
}

void UserRouter::RemoveShard(int shard_id) {
  auto it = std::lower_bound(shard_ids_.begin(), shard_ids_.end(), shard_id);
  ADAMOVE_CHECK(it != shard_ids_.end() && *it == shard_id);
  shard_ids_.erase(it);
  RebuildRing();
}

bool UserRouter::HasShard(int shard_id) const {
  return std::binary_search(shard_ids_.begin(), shard_ids_.end(), shard_id);
}

void UserRouter::RebuildRing() {
  // Rebuilding from scratch (rather than patching) keeps the ring a pure
  // function of the shard set — the determinism property the tests pin.
  ring_.clear();
  ring_.reserve(shard_ids_.size() *
                static_cast<size_t>(config_.virtual_nodes));
  for (int shard_id : shard_ids_) {
    for (int replica = 0; replica < config_.virtual_nodes; ++replica) {
      ring_.emplace_back(VnodePosition(shard_id, replica), shard_id);
    }
  }
  // Sort by position; break position ties by shard id so even a 64-bit
  // collision between vnodes of different shards resolves identically
  // everywhere.
  std::sort(ring_.begin(), ring_.end());
}

int UserRouter::ShardFor(int64_t user) const {
  ADAMOVE_CHECK(!ring_.empty());
  const uint64_t position = HashUser(user);
  // First vnode clockwise of (strictly after) the user's position; the ring
  // wraps to its first point.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), position,
      [](uint64_t p, const std::pair<uint64_t, int>& node) {
        return p < node.first;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace adamove::shard
