#ifndef ADAMOVE_SHARD_COMPACT_STORE_H_
#define ADAMOVE_SHARD_COMPACT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/arena.h"
#include "common/durable_io.h"
#include "common/mutex.h"
#include "serve/session_store.h"
#include "shard/compact_state.h"

namespace adamove::shard {

/// On-disk cold-tier files: a durable_io framed file (DESIGN.md §12).
/// Frame 0 is a header {format version, user count}; every further frame is
/// one user's compact blob (the exact bytes the arena held), users
/// ascending — identical store state saves to identical bytes.
inline constexpr uint32_t kCompactStoreMagic = 0xADA5C0DE;

struct CompactStoreConfig {
  /// Slab granule of the backing arena (common::SlabArena).
  size_t slab_bytes = 64 * 1024;
  /// Compact codec options (q8 quantization on by default — still lossless,
  /// see compact_state.h).
  CompactOptions options;
};

/// The cold tier behind a serve::SessionStore (DESIGN.md §12): evicted
/// users live here as compact blobs (compact_state.h) carved out of a slab
/// arena, ~4x smaller than the dense OnlineAdapter representation and freed
/// in O(1) on rehydration. Implements serve::ColdTier, so the session store
/// calls Take/Accept without knowing the representation.
///
/// Thread-safe: one internal mutex guards the arena and the blob map. The
/// ColdTier contract says callers hold a session-store shard mutex while
/// calling in; the lock order (shard mutex -> store mutex) is acyclic
/// because the store never calls back out.
class CompactStore : public serve::ColdTier {
 public:
  struct Stats {
    size_t users = 0;
    /// Sum of encoded blob lengths (payload bytes, excluding arena slack).
    uint64_t blob_bytes = 0;
    common::SlabArena::Stats arena;
    uint64_t accepts = 0;
    uint64_t takes = 0;
    /// Cumulative codec accounting across Accepts: patterns stored, and the
    /// subset that failed exact quantization and stayed raw f32.
    uint64_t patterns = 0;
    uint64_t raw_patterns = 0;
  };

  explicit CompactStore(const CompactStoreConfig& config = {});

  /// ColdTier: removes and rehydrates one user's blob (O(1) arena free).
  bool Take(int64_t user, core::OnlineAdapter::UserSnapshot* out) override;

  /// ColdTier: encodes and stores a user's complete state, replacing any
  /// previous blob. Empty snapshots just erase (a user with no entries has
  /// nothing to keep).
  void Accept(core::OnlineAdapter::UserSnapshot&& snap) override;

  bool Contains(int64_t user) const;
  size_t UserCount() const;
  /// All dehydrated users, ascending.
  std::vector<int64_t> Users() const;
  Stats GetStats() const;

  /// Persists every blob to `path` via durable_io's atomic framed commit
  /// (subject to the io.snapshot_* fault points). `stats` reports users /
  /// payload bytes written.
  common::IoResult Save(const std::string& path,
                        serve::SnapshotStats* stats = nullptr) const;

  /// Loads blobs from a compact-store file, validating every frame through
  /// the full decoder before admitting its bytes (a corrupt or
  /// duplicate-user frame aborts with a structured error; the verified
  /// prefix stands, and a torn tail reports ok with stats->torn_tail).
  /// Loaded users replace same-id blobs already in the store.
  common::IoResult Load(const std::string& path,
                        serve::SnapshotStats* stats = nullptr);

 private:
  struct Blob {
    common::SlabArena::Block block;
    uint32_t length = 0;  // encoded payload bytes within the block
  };

  /// Copies `bytes` into the arena under `user`, freeing any previous blob.
  void StoreBlobLocked(int64_t user, std::string_view bytes)
      ADAMOVE_REQUIRES(mu_);

  CompactStoreConfig config_;
  mutable common::Mutex mu_;
  common::SlabArena arena_ ADAMOVE_GUARDED_BY(mu_);
  std::unordered_map<int64_t, Blob> blobs_ ADAMOVE_GUARDED_BY(mu_);
  uint64_t blob_bytes_ ADAMOVE_GUARDED_BY(mu_) = 0;
  uint64_t accepts_ ADAMOVE_GUARDED_BY(mu_) = 0;
  uint64_t takes_ ADAMOVE_GUARDED_BY(mu_) = 0;
  uint64_t patterns_ ADAMOVE_GUARDED_BY(mu_) = 0;
  uint64_t raw_patterns_ ADAMOVE_GUARDED_BY(mu_) = 0;
};

}  // namespace adamove::shard

#endif  // ADAMOVE_SHARD_COMPACT_STORE_H_
