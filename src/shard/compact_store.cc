#include "shard/compact_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace adamove::shard {

CompactStore::CompactStore(const CompactStoreConfig& config)
    : config_(config), arena_(config.slab_bytes) {}

void CompactStore::StoreBlobLocked(int64_t user, std::string_view bytes) {
  auto it = blobs_.find(user);
  if (it != blobs_.end()) {
    blob_bytes_ -= it->second.length;
    arena_.Free(it->second.block);
    blobs_.erase(it);
  }
  if (bytes.empty()) return;
  Blob blob;
  blob.block = arena_.Allocate(bytes.size());
  blob.length = static_cast<uint32_t>(bytes.size());
  std::memcpy(blob.block.data, bytes.data(), bytes.size());
  blob_bytes_ += blob.length;
  blobs_.emplace(user, blob);
}

void CompactStore::Accept(core::OnlineAdapter::UserSnapshot&& snap) {
  std::string encoded;
  CompactEncodeStats encode_stats;
  if (!snap.locations.empty()) {
    EncodeCompactUser(snap, config_.options, &encoded, &encode_stats);
  }
  common::MutexLock lock(mu_);
  // An empty snapshot erases: "this user has no state" and "this user is
  // unknown" must stay indistinguishable to Take.
  StoreBlobLocked(snap.user, encoded);
  accepts_ += 1;
  patterns_ += encode_stats.patterns;
  raw_patterns_ += encode_stats.raw_patterns;
}

bool CompactStore::Take(int64_t user, core::OnlineAdapter::UserSnapshot* out) {
  common::MutexLock lock(mu_);
  auto it = blobs_.find(user);
  if (it == blobs_.end()) return false;
  const std::string_view bytes(it->second.block.data, it->second.length);
  // Blobs are only ever written by our own encoder (Accept) or admitted
  // through full decode validation (Load), so an undecodable blob here is
  // memory corruption — abort loudly rather than serve a half-user.
  const common::IoResult decoded = DecodeCompactUser(bytes, out);
  ADAMOVE_CHECK(static_cast<bool>(decoded));
  blob_bytes_ -= it->second.length;
  arena_.Free(it->second.block);
  blobs_.erase(it);
  takes_ += 1;
  return true;
}

bool CompactStore::Contains(int64_t user) const {
  common::MutexLock lock(mu_);
  return blobs_.count(user) > 0;
}

size_t CompactStore::UserCount() const {
  common::MutexLock lock(mu_);
  return blobs_.size();
}

std::vector<int64_t> CompactStore::Users() const {
  common::MutexLock lock(mu_);
  std::vector<int64_t> users;
  users.reserve(blobs_.size());
  for (const auto& [user, blob] : blobs_) users.push_back(user);
  std::sort(users.begin(), users.end());
  return users;
}

CompactStore::Stats CompactStore::GetStats() const {
  common::MutexLock lock(mu_);
  Stats stats;
  stats.users = blobs_.size();
  stats.blob_bytes = blob_bytes_;
  stats.arena = arena_.stats();
  stats.accepts = accepts_;
  stats.takes = takes_;
  stats.patterns = patterns_;
  stats.raw_patterns = raw_patterns_;
  return stats;
}

common::IoResult CompactStore::Save(const std::string& path,
                                    serve::SnapshotStats* stats) const {
  common::FramedFileWriter writer(kCompactStoreMagic);
  size_t users = 0;
  uint64_t bytes = 0;
  {
    common::MutexLock lock(mu_);
    std::vector<int64_t> ordered;
    ordered.reserve(blobs_.size());
    for (const auto& [user, blob] : blobs_) ordered.push_back(user);
    std::sort(ordered.begin(), ordered.end());
    std::string header;
    common::AppendU32(&header, 1);  // compact-store format version
    common::AppendU64(&header, static_cast<uint64_t>(ordered.size()));
    writer.AddFrame(header);
    for (int64_t user : ordered) {
      const Blob& blob = blobs_.at(user);
      writer.AddFrame(std::string_view(blob.block.data, blob.length));
      ++users;
      bytes += blob.length;
    }
  }
  if (stats != nullptr) {
    stats->users = users;
    stats->patterns = 0;  // blobs are persisted opaque; not re-decoded here
    stats->bytes = bytes;
    stats->torn_tail = false;
  }
  return writer.Commit(path);
}

common::IoResult CompactStore::Load(const std::string& path,
                                    serve::SnapshotStats* stats) {
  common::FramedRead framed;
  common::IoResult read =
      common::ReadFramedFile(path, kCompactStoreMagic, &framed);
  if (framed.frames.empty()) {
    if (stats != nullptr) *stats = serve::SnapshotStats{};
    if (!read) return read;
    return common::IoResult::Fail(path + ": compact store has no header");
  }
  common::WireReader header(framed.frames[0]);
  uint32_t version = 0;
  uint64_t declared_users = 0;
  if (!header.ReadU32(&version) || !header.ReadU64(&declared_users) ||
      !header.AtEnd()) {
    if (stats != nullptr) *stats = serve::SnapshotStats{};
    return common::IoResult::Fail(path + ": malformed compact-store header");
  }
  if (version != 1) {
    if (stats != nullptr) *stats = serve::SnapshotStats{};
    return common::IoResult::Fail(path + ": unsupported compact-store "
                                  "version " + std::to_string(version));
  }
  size_t users = 0;
  size_t patterns = 0;
  uint64_t bytes = 0;
  std::unordered_set<int64_t> seen;
  for (size_t f = 1; f < framed.frames.size(); ++f) {
    // Full decode validation before the bytes are admitted: Take later
    // CHECKs decodability, so nothing unvalidated may enter the arena.
    core::OnlineAdapter::UserSnapshot snap;
    const common::IoResult decoded =
        DecodeCompactUser(framed.frames[f], &snap);
    if (!decoded) {
      if (stats != nullptr) {
        stats->users = users;
        stats->patterns = patterns;
        stats->bytes = bytes;
        stats->torn_tail = framed.torn_tail;
      }
      return common::IoResult::Fail(path + ": frame " + std::to_string(f) +
                                    ": " + decoded.error);
    }
    // Save writes each user exactly once, so a repeated id is corruption —
    // and silently overwriting would make stats->users overcount what the
    // store actually holds.
    if (!seen.insert(snap.user).second) {
      if (stats != nullptr) {
        stats->users = users;
        stats->patterns = patterns;
        stats->bytes = bytes;
        stats->torn_tail = framed.torn_tail;
      }
      return common::IoResult::Fail(path + ": frame " + std::to_string(f) +
                                    ": duplicate user " +
                                    std::to_string(snap.user));
    }
    size_t user_patterns = 0;
    for (const auto& [location, entries] : snap.locations) {
      user_patterns += entries.size();
    }
    {
      common::MutexLock lock(mu_);
      StoreBlobLocked(snap.user, framed.frames[f]);
    }
    ++users;
    patterns += user_patterns;
    bytes += framed.frames[f].size();
  }
  if (stats != nullptr) {
    stats->users = users;
    stats->patterns = patterns;
    stats->bytes = bytes;
    stats->torn_tail = framed.torn_tail;
  }
  if (read && !framed.torn_tail &&
      framed.frames.size() - 1 != declared_users) {
    return common::IoResult::Fail(
        path + ": header declares " + std::to_string(declared_users) +
        " users but the file holds " +
        std::to_string(framed.frames.size() - 1) + " blob frames");
  }
  return read;
}

}  // namespace adamove::shard
