#ifndef ADAMOVE_SHARD_COMPACT_STATE_H_
#define ADAMOVE_SHARD_COMPACT_STATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/durable_io.h"
#include "core/online_adapter.h"

namespace adamove::shard {

/// Compact wire encoding of one user's knowledge base (DESIGN.md §12) — the
/// dehydrated form cold users occupy between serving bursts. Layout (all
/// integers varint/zigzag over common::durable_io):
///
///   zigzag  user id
///   varint  pattern dimension D (the first entry's size; other entries
///           may differ — they use mode 2 below)
///   varint  location count
///   per location (ids strictly ascending, delta-encoded):
///     zigzag  location delta vs previous location
///     varint  entry count (>= 1)
///     per entry (FIFO order, timestamps delta-encoded within the location):
///       zigzag  timestamp delta vs previous entry
///       u8      mode: 0 = raw f32 (4·D bytes), 1 = q8 (zigzag exponent
///               followed by D int8 bytes — common/qfloat.h), 2 = raw f32
///               with an explicit varint length (entries whose size != D)
///   pending-delta section (present only when the user carries deferred
///   ingests — DESIGN.md §16; clean users end after the locations, keeping
///   their blobs byte-identical to the pre-deferral layout):
///     varint  pending count (>= 1)
///     per delta (arrival order, timestamps delta-encoded across the
///     section):
///       zigzag  timestamp delta vs previous delta
///       zigzag  next location (raw, arrival order is not sorted)
///       u8      mode + payload, same modes as entries above
///
/// Encode is *unconditionally lossless and unconditionally decodable*: a
/// pattern is stored as q8 only when it has the header dimension and the
/// quantized form decodes back to bit-identical floats (always true for
/// patterns the serving layer canonicalized at ingest — see
/// serve::SessionStoreConfig::canonicalize_patterns); anything else keeps
/// raw f32, with a per-entry length when sizes are heterogeneous (the
/// store accepts patterns of any size, so one user may mix dimensions).
/// Dehydrate -> rehydrate round trips are therefore bit-identical by
/// construction, and Predict over rehydrated state matches Predict over
/// the live state bit for bit (pinned by tests/shard/compact_state_test).
///
/// Decode is strictly bounds-checked in the DecodeUser tradition: hostile
/// counts, non-ascending locations, dimension mismatches and trailing bytes
/// all fail with a structured error naming the field — never an allocation
/// blow-up or an out-of-range read.
struct CompactEncodeStats {
  size_t locations = 0;
  size_t patterns = 0;
  /// Patterns that did not survive exact quantization and stayed raw f32.
  size_t raw_patterns = 0;
};

struct CompactOptions {
  /// Try q8 storage for each pattern (falling back per pattern when the
  /// round trip would not be exact). Off = always raw f32.
  bool quantize = true;
};

/// Serializes `snap` (locations must be ascending — ExportUser's order).
void EncodeCompactUser(const core::OnlineAdapter::UserSnapshot& snap,
                       const CompactOptions& options, std::string* out,
                       CompactEncodeStats* stats = nullptr);

/// Parses a compact blob back into a snapshot (locations ascending).
common::IoResult DecodeCompactUser(std::string_view bytes,
                                   core::OnlineAdapter::UserSnapshot* out);

/// Reads only the leading user id of a compact blob — what the router needs
/// to place a frame without decoding the patterns.
common::IoResult PeekCompactUser(std::string_view bytes, int64_t* user);

}  // namespace adamove::shard

#endif  // ADAMOVE_SHARD_COMPACT_STATE_H_
