#!/usr/bin/env bash
# The repo's full verification ladder, in the order a reviewer should trust:
#
#   1. tier-1: plain build + the complete ctest suite
#   2. TSan:   `concurrency`-labeled suites under -DADAMOVE_SANITIZE=thread
#              (data races in the serving path / kernels / chaos suite)
#   3. ASan:   `fault`-labeled suites under -DADAMOVE_SANITIZE=address
#              (memory errors on the fault-injection and degradation paths)
#
# Usage: scripts/check.sh            # run all three stages
#        JOBS=8 scripts/check.sh     # override build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "==> [1/3] tier-1: build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure

echo "==> [2/3] TSan: concurrency-labeled suites"
cmake -B build-tsan -S . -DADAMOVE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan -L concurrency --output-on-failure

echo "==> [3/3] ASan: fault-labeled suites"
cmake -B build-asan -S . -DADAMOVE_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan -L fault --output-on-failure

echo "==> all checks passed"
