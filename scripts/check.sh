#!/usr/bin/env bash
# The repo's full verification ladder, in the order a reviewer should trust:
#
#   1. tier-1: plain build (-Werror) + the complete ctest suite, three
#              times: under the dispatcher's default backend selection
#              (SIMD on AVX2 hosts), with ADAMOVE_KERNEL_BACKEND=scalar
#              forced — so the golden pin and every numeric suite are
#              exercised against both arithmetic classes (DESIGN.md §13) —
#              and with ADAMOVE_FORWARD=plan, so the whole suite also runs
#              over the static-plan inference path (DESIGN.md §14). The
#              `plan` label (alloc-probe pins, plan/graph bit-identity,
#              plan-mode golden) runs in all three passes.
#   2. TSan:   `concurrency` + `persist` + `shard` + `plan` + `verify` +
#              `overload` labels under -DADAMOVE_SANITIZE=thread (data races
#              in the serving path / kernels / chaos suite, snapshot/restore
#              racing live traffic, rebalance-while-serving in the shard
#              subsystem, plan scratch/cache sharing across workers, and the
#              elastic-adaptation scheduler under open-loop bursts)
#   3. ASan+UBSan: `fault` + `persist` + `shard` + `plan` + `verify` +
#              `overload` labels under -DADAMOVE_SANITIZE=address (memory
#              errors on the fault-injection, degradation, checkpoint-parsing,
#              compact codec, plan-arena and deferred-adaptation paths), then
#              `nn` + `backend` + `fault` + `persist` + `shard` + `plan` +
#              `verify` + `overload` under -DADAMOVE_SANITIZE=undefined with
#              -fno-sanitize-recover=all (any UB aborts the test). The
#              alloc-probe counting assertions skip themselves under
#              sanitizers (the interposition is compiled out); the same
#              requests still execute, now leak/race/UB-checked.
#   4. static: scripts/lint.sh (adamove_lint + clang-tidy), then the
#              thread-safety analysis build (-DADAMOVE_ANALYZE=ON under
#              clang++, -Werror=thread-safety) including the negative-compile
#              cases in tests/common/annotations_compile_fail/ and the
#              `persist` suites (the snapshot path is lock-annotation-heavy).
#              Skipped with a notice when clang++ is not installed — the
#              annotations are Clang-only; the lint pass still gates.
#
# Usage: scripts/check.sh            # run all four stages
#        JOBS=8 scripts/check.sh     # override build parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "==> [1/4] tier-1: build (-Werror) + full test suite"
cmake -B build -S . -DADAMOVE_WERROR=ON >/dev/null
cmake --build build -j "${JOBS}"
echo "    ... default kernel backend (runtime dispatch)"
ctest --test-dir build --output-on-failure
echo "    ... ADAMOVE_KERNEL_BACKEND=scalar forced"
ADAMOVE_KERNEL_BACKEND=scalar ctest --test-dir build --output-on-failure
echo "    ... ADAMOVE_FORWARD=plan forced (static-plan inference path)"
ADAMOVE_FORWARD=plan ctest --test-dir build --output-on-failure
echo "    ... bench_serving --overload smoke (small env, no gate)"
# Exercises the full elastic-adaptation overload pass end to end — saturation
# probe, both postures, drain, JSON write — at toy scale. Deliberately no
# --overload_gate: the latency bar needs >= 4 dedicated cores (DESIGN.md §16);
# the checked-in BENCH_overload.json baseline carries the frontier numbers.
# Run from the build tree so the JSON lands next to the other bench outputs
# instead of clobbering the checked-in baseline at the repo root.
(cd build/bench && \
  ADAMOVE_BENCH_SCALE=0.1 ADAMOVE_BENCH_EPOCHS=1 ADAMOVE_BENCH_TRAIN_CAP=300 \
  ADAMOVE_BENCH_SERVE_REQUESTS=200 ./bench_serving --overload)

echo "==> [2/4] TSan: concurrency + persist + shard + plan + verify + overload labeled suites"
cmake -B build-tsan -S . -DADAMOVE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan -L 'concurrency|persist|shard|plan|verify|overload' \
  --output-on-failure

echo "==> [3/4] ASan: fault + persist + shard + plan + verify + overload labeled suites"
cmake -B build-asan -S . -DADAMOVE_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan -L 'fault|persist|shard|plan|verify|overload' \
  --output-on-failure

echo "==> [3/4] UBSan: nn + backend + fault + persist + shard + plan + verify + overload labels (-fno-sanitize-recover=all)"
cmake -B build-ubsan -S . -DADAMOVE_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan -L 'nn|backend|fault|persist|shard|plan|verify|overload' \
  --output-on-failure

echo "==> [4/4] static analysis: lint + thread-safety contracts"
scripts/lint.sh
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-analyze -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DADAMOVE_ANALYZE=ON -DADAMOVE_WERROR=ON >/dev/null
  cmake --build build-analyze -j "${JOBS}"
  ctest --test-dir build-analyze -R annotations_compile_fail \
    --output-on-failure
  ctest --test-dir build-analyze -L 'persist|shard|plan|verify|overload' \
    --output-on-failure
else
  echo "    clang++ not installed — thread-safety analysis build skipped"
  echo "    (annotations are checked only by Clang; lint pass above gates)"
fi

echo "==> all checks passed"
