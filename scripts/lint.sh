#!/usr/bin/env bash
# Repo lint driver — stage 4 of scripts/check.sh, also runnable standalone.
#
#   scripts/lint.sh                 # adamove_lint + clang-tidy (if present)
#   ADAMOVE_LINT_BUILD_DIR=build scripts/lint.sh   # build dir / compile DB
#
# Two passes:
#
#   1. tools/adamove_lint — the compiled repo invariant linter. It owns the
#      nine per-line rules this script used to express as grep pipelines
#      (raw-mutex, naked-new, rand, raw-write, session-store-construction,
#      raw-intrinsics-x86/-neon, plan-executor-alloc, todo-label — see
#      tools/adamove_lint/lint.h for each rule's rationale), running them
#      over a real comment- and string-literal-aware tokenizer with per-rule
#      NOLINT(rule) scoping, plus the cross-registry checks no grep can do:
#      every FaultPoint in src/ documented in DESIGN.md and exercised under
#      tests/, every ADAMOVE_* knob documented in README.md, every ctest
#      label run by a check.sh stage. Diagnostics are `file:line: rule:
#      message`; any finding fails the pass. The rules themselves are
#      unit-tested (tests/tools/adamove_lint_test.cc), including regressions
#      for the grep era's two defect classes: NOLINT anywhere on a line
#      (even inside a string literal) silencing every rule, and the
#      comment stripper recognizing only line-leading //.
#
#   2. clang-tidy (.clang-tidy profile: bugprone-*, performance-*,
#      concurrency-*, container/string readability checks) over every .cc
#      under src/, using the compile database of an existing build dir.
#      Skipped with a notice when clang-tidy is not installed — pass 1
#      still gates.
set -uo pipefail

cd "$(dirname "$0")/.."
status=0
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${ADAMOVE_LINT_BUILD_DIR:-build}"

# ---- pass 1: adamove_lint ------------------------------------------------
if ! cmake -B "$BUILD_DIR" -S . >/dev/null; then
  echo "lint[adamove_lint]: cmake configure of $BUILD_DIR failed"
  exit 1
fi
if ! cmake --build "$BUILD_DIR" --target adamove_lint -j "$JOBS" >/dev/null
then
  echo "lint[adamove_lint]: build failed"
  exit 1
fi
if "$BUILD_DIR/tools/adamove_lint" --root .; then
  echo "lint[adamove_lint]: ok"
else
  echo "lint[adamove_lint]: FAIL"
  status=1
fi

# ---- pass 2: clang-tidy --------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint[clang-tidy]: $(clang-tidy --version | grep -m1 -o 'LLVM version [0-9.]*')"
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint[clang-tidy]: no $BUILD_DIR/compile_commands.json —" \
         "configure first (cmake -B $BUILD_DIR -S .)"
    status=1
  else
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    if clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"; then
      echo "lint[clang-tidy]: ok (${#TIDY_SOURCES[@]} files)"
    else
      echo "lint[clang-tidy]: FAIL"
      status=1
    fi
  fi
else
  echo "lint[clang-tidy]: skipped (clang-tidy not installed)"
fi

if [[ "$status" -ne 0 ]]; then
  echo "lint: FAILED"
else
  echo "lint: all passes clean"
fi
exit "$status"
