#!/usr/bin/env bash
# Repo lint driver — stage 4 of scripts/check.sh, also runnable standalone.
#
#   scripts/lint.sh                 # custom lints + clang-tidy (if present)
#   ADAMOVE_LINT_BUILD_DIR=build scripts/lint.sh   # compile DB location
#
# Two passes:
#
#   1. Custom grep lints: repo-specific hazards that clang-tidy has no
#      check for. Exits non-zero on any hit. A line may opt out with an
#      inline NOLINT comment stating the reason.
#
#        raw-mutex     std::mutex / lock_guard / unique_lock / scoped_lock /
#                      condition_variable anywhere outside common/mutex.h.
#                      All locking must go through the annotated
#                      common::Mutex wrappers so ADAMOVE_ANALYZE can check
#                      the contracts (DESIGN.md §10).
#        naked-new     `new` outside smart-pointer factories. The two
#                      intentional leaks (fault registry) carry NOLINT.
#        rand          rand()/srand(): unseeded global state breaks the
#                      repo-wide determinism contract; use common/rng.h.
#        raw-write     std::ofstream / fopen write paths in src/ outside
#                      common/durable_io and data/. Anything that persists
#                      state the process must survive losing has to go
#                      through WriteFileAtomic + framing (DESIGN.md §11) —
#                      a raw write is exactly the torn-file bug the durable
#                      layer exists to prevent. data/ is exempt (exports of
#                      derivable artifacts), as is anything else carrying a
#                      NOLINT with a stated reason.
#        session-store-construction
#                      direct SessionStore construction in src/ outside
#                      src/shard. Production session state must be owned by
#                      a shard group (shard::ShardedService wires the cold
#                      tier, canonical ingest and per-group stats); a bare
#                      store silently opts out of capacity management
#                      (DESIGN.md §12). Tests and bench/ stay exempt — the
#                      unsharded path is still a legitimate harness subject.
#        raw-intrinsics
#                      x86 vector intrinsics (`_mm256_*`, `__m256`, any
#                      `_mm512_*`) outside src/nn/kernels_avx2.cc, and NEON
#                      intrinsics outside src/nn/kernels_neon.cc. All SIMD
#                      lives behind the kernel dispatch table (DESIGN.md
#                      §13); an intrinsic anywhere else bypasses the
#                      backend contract, the scalar-forced golden pin and
#                      the cross-backend agreement suite.
#        plan-executor-alloc
#                      allocation idioms (Tensor construction, naked new,
#                      container growth/resize) inside the static-plan
#                      executor (src/nn/plan/executor.*). Its hot path is
#                      contractually zero-allocation (DESIGN.md §14); every
#                      temp lives in the pre-planned arena. The plan-rebind
#                      arena sizing carries NOLINT.
#        todo-label    TODO without an owner label `TODO(name):` rots.
#
#   2. clang-tidy (.clang-tidy profile: bugprone-*, performance-*,
#      concurrency-*, container/string readability checks) over every .cc
#      under src/, using the compile database of an existing build dir.
#      Skipped with a notice when clang-tidy is not installed — the custom
#      lints still gate.
set -uo pipefail

cd "$(dirname "$0")/.."
status=0

# ---- pass 1: custom grep lints ------------------------------------------
# Strips pure comment lines so prose mentioning std::mutex doesn't trip the
# lint, then drops lines carrying an inline NOLINT opt-out.
run_lint() { # <name> <regex> <path...>
  local name="$1" regex="$2"
  shift 2
  local hits
  hits=$(grep -rnE "$regex" "$@" 2>/dev/null |
    grep -vE '^[^:]+:[0-9]+:\s*(//|///|\*)' |
    grep -v 'NOLINT' || true)
  if [[ -n "$hits" ]]; then
    echo "lint[$name]: FAIL"
    echo "$hits"
    status=1
  else
    echo "lint[$name]: ok"
  fi
}

# Every file under src/ except the one place raw primitives are allowed.
mapfile -t SRC_NO_MUTEX < <(find src -name '*.cc' -o -name '*.h' |
  grep -v '^src/common/mutex\.h$')

run_lint raw-mutex \
  'std::mutex|std::condition_variable|std::lock_guard|std::unique_lock|std::scoped_lock|std::shared_mutex' \
  "${SRC_NO_MUTEX[@]}"
run_lint naked-new '\bnew +[A-Za-z_][A-Za-z0-9_:<>]*' src
run_lint rand '\b(s)?rand\(' src

# Durable-write discipline: only common/durable_io may open files for
# writing in src/ (data/ exports derivable artifacts and is exempt).
mapfile -t SRC_NO_DURABLE < <(find src -name '*.cc' -o -name '*.h' |
  grep -vE '^src/(common/durable_io\.(h|cc)|data/)')
run_lint raw-write 'std::ofstream|\b(std::)?fopen *\(' \
  "${SRC_NO_DURABLE[@]}"
# SessionStore ownership discipline: only the shard subsystem may construct
# stores in src/ (the class's own files are excluded along with src/shard).
mapfile -t SRC_NO_SHARD < <(find src -name '*.cc' -o -name '*.h' |
  grep -vE '^src/(shard/|serve/session_store\.(h|cc))')
run_lint session-store-construction \
  '\bSessionStore[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*[({]|make_unique<[^>]*SessionStore' \
  "${SRC_NO_SHARD[@]}"
# SIMD containment: intrinsics only inside the one backend file per ISA, so
# every vectorized path is reachable through the dispatch table and covered
# by the scalar/simd agreement tests.
mapfile -t SRC_NO_AVX2 < <(find src -name '*.cc' -o -name '*.h' |
  grep -v '^src/nn/kernels_avx2\.cc$')
run_lint raw-intrinsics-x86 '_mm256_|_mm512_|__m256|__m512' \
  "${SRC_NO_AVX2[@]}"
mapfile -t SRC_NO_NEON < <(find src -name '*.cc' -o -name '*.h' |
  grep -v '^src/nn/kernels_neon\.cc$')
run_lint raw-intrinsics-neon \
  'vld1q_|vst1q_|vfmaq_|float32x4_t|float64x2_t|vaddvq_' \
  "${SRC_NO_NEON[@]}"
# Zero-allocation executor discipline (DESIGN.md §14): the static-plan
# executor's hot path may not construct tensors, heap-allocate, or grow
# containers — every temp it touches was packed into the arena at plan
# compile time, and the `plan`-labeled alloc-probe tests pin the result.
# The one legitimate allocation (Bind sizing the arena on a plan rebind)
# carries an inline NOLINT with its reason.
run_lint plan-executor-alloc \
  '\bnew\b|\bTensor\b|push_back|emplace_back|\.[Rr]esize\(|\.reserve\(|make_unique|make_shared' \
  src/nn/plan/executor.cc src/nn/plan/executor.h
todo_hits=$(grep -rnE '\bTODO\b' src 2>/dev/null |
  grep -vE 'TODO\([A-Za-z0-9_.-]+\)' | grep -v 'NOLINT' || true)
if [[ -n "$todo_hits" ]]; then
  echo "lint[todo-label]: FAIL (use TODO(owner): ...)"
  echo "$todo_hits"
  status=1
else
  echo "lint[todo-label]: ok"
fi

# ---- pass 2: clang-tidy --------------------------------------------------
BUILD_DIR="${ADAMOVE_LINT_BUILD_DIR:-build}"
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "lint[clang-tidy]: no $BUILD_DIR/compile_commands.json —" \
         "configure first (cmake -B $BUILD_DIR -S .)"
    status=1
  else
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    if clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"; then
      echo "lint[clang-tidy]: ok (${#TIDY_SOURCES[@]} files)"
    else
      echo "lint[clang-tidy]: FAIL"
      status=1
    fi
  fi
else
  echo "lint[clang-tidy]: skipped (clang-tidy not installed)"
fi

if [[ "$status" -ne 0 ]]; then
  echo "lint: FAILED"
else
  echo "lint: all passes clean"
fi
exit "$status"
