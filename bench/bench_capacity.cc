// Million-user capacity bench (DESIGN.md §12): how many users fit resident,
// and what sharding does to the serving tail.
//
// Part 1 — representation: the same synthetic knowledge bases are held (a)
// dense in a core::OnlineAdapter (measured on a sample — the accounting is
// per-user linear) and (b) compact in a shard::CompactStore at FULL scale —
// one million users by default, actually materialized, with process RSS
// reported before and after. The acceptance ratio printed (and written to
// BENCH_capacity.json) is dense resident bytes/user over compact payload
// bytes/user, which must clear 4x. A rehydration spot-check re-decodes a
// slice of users and verifies bit-identical state, so the number measured is
// for a *lossless* representation, not a lossy one.
//
// Part 2 — serving: a shard::ShardedService sweep over shard-group counts,
// closed-loop clients at max speed, reporting throughput and p99 end-to-end
// latency per shard count.
//
// Knobs (on top of the shared ADAMOVE_BENCH_* ones):
//   ADAMOVE_BENCH_CAP_USERS    — resident users at full scale (default 1M)
//   ADAMOVE_BENCH_CAP_PATTERNS — stored patterns per user (default 4)
//   ADAMOVE_BENCH_CAP_REQUESTS — serving-sweep requests (default 2000)
//   ADAMOVE_BENCH_CAP_CLIENTS  — serving-sweep client threads (default 8)
//
// Flags:
//   --bench_report — write BENCH_capacity.json next to the binary.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/latency_histogram.h"
#include "common/mutex.h"
#include "common/qfloat.h"
#include "common/table_printer.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "serve/load_gen.h"
#include "shard/compact_store.h"
#include "shard/sharded_service.h"

using namespace adamove;

namespace {

/// Deterministic cheap per-element noise (splitmix64 finalizer) — 1M users
/// of std::mt19937 draws would dominate the bench, and the bytes/user
/// numbers only need *incompressible-ish* patterns, not statistical rigor.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One user's synthetic knowledge base: `patterns` canonical (q8-exact)
/// pattern vectors spread over distinct locations — the state shape the
/// serving layer's canonical ingest produces.
core::OnlineAdapter::UserSnapshot MakeSnapshot(int64_t user, int patterns,
                                               int dim) {
  core::OnlineAdapter::UserSnapshot snap;
  snap.user = user;
  snap.locations.reserve(static_cast<size_t>(patterns));
  int64_t t = 1333238400 + (user % 977) * 3600;
  for (int p = 0; p < patterns; ++p) {
    core::OnlineAdapter::Entry entry;
    entry.pattern.resize(static_cast<size_t>(dim));
    for (int i = 0; i < dim; ++i) {
      const uint64_t h =
          Mix(static_cast<uint64_t>(user) * 131 + static_cast<uint64_t>(p) +
              static_cast<uint64_t>(i) * 1000003ULL);
      entry.pattern[static_cast<size_t>(i)] =
          static_cast<float>(static_cast<double>(h % 20001) / 10000.0 - 1.0);
    }
    common::QfloatCanonicalize(&entry.pattern);
    entry.timestamp = t + p * 3600;
    std::vector<core::OnlineAdapter::Entry> entries;
    entries.push_back(std::move(entry));
    snap.locations.emplace_back(p, std::move(entries));
  }
  return snap;
}

bool SnapshotsEqual(const core::OnlineAdapter::UserSnapshot& a,
                    const core::OnlineAdapter::UserSnapshot& b) {
  if (a.user != b.user || a.locations.size() != b.locations.size()) {
    return false;
  }
  for (size_t l = 0; l < a.locations.size(); ++l) {
    if (a.locations[l].first != b.locations[l].first) return false;
    const auto& ea = a.locations[l].second;
    const auto& eb = b.locations[l].second;
    if (ea.size() != eb.size()) return false;
    for (size_t e = 0; e < ea.size(); ++e) {
      if (ea[e].timestamp != eb[e].timestamp ||
          ea[e].pattern != eb[e].pattern) {
        return false;
      }
    }
  }
  return true;
}

struct CapacityReport {
  size_t users = 0;
  int patterns = 0;
  int dim = 0;
  double dense_bytes_per_user = 0;
  double compact_payload_per_user = 0;
  double compact_reserved_per_user = 0;
  double ratio = 0;  // dense / compact payload — the acceptance number
  uint64_t rss_before = 0;
  uint64_t rss_after = 0;
  size_t rehydrate_checked = 0;
  bool rehydrate_ok = false;
};

CapacityReport RunCapacity(size_t users, int patterns, int dim) {
  CapacityReport rep;
  rep.users = users;
  rep.patterns = patterns;
  rep.dim = dim;

  // Dense reference on a sample: ResidentBytes accounting is per-user
  // linear, so 1/50 of the population measures the same bytes/user without
  // multi-GB of dense state.
  const size_t sample = std::max<size_t>(1000, users / 50);
  {
    core::OnlineAdapter dense{core::PttaConfig{}};
    for (size_t u = 0; u < sample; ++u) {
      dense.Adopt(MakeSnapshot(static_cast<int64_t>(u), patterns, dim));
    }
    rep.dense_bytes_per_user = static_cast<double>(dense.ResidentBytes()) /
                               static_cast<double>(sample);
  }

  rep.rss_before = bench::CurrentRssBytes();
  shard::CompactStore store;
  for (size_t u = 0; u < users; ++u) {
    store.Accept(MakeSnapshot(static_cast<int64_t>(u), patterns, dim));
  }
  rep.rss_after = bench::CurrentRssBytes();
  const shard::CompactStore::Stats stats = store.GetStats();
  rep.compact_payload_per_user =
      static_cast<double>(stats.blob_bytes) / static_cast<double>(users);
  rep.compact_reserved_per_user =
      static_cast<double>(stats.arena.reserved_bytes) /
      static_cast<double>(users);
  rep.ratio = rep.dense_bytes_per_user / rep.compact_payload_per_user;

  // Losslessness spot-check: a strided slice rehydrates bit-identically.
  rep.rehydrate_ok = true;
  const size_t stride = std::max<size_t>(1, users / 1000);
  for (size_t u = 0; u < users; u += stride) {
    core::OnlineAdapter::UserSnapshot back;
    if (!store.Take(static_cast<int64_t>(u), &back) ||
        !SnapshotsEqual(back, MakeSnapshot(static_cast<int64_t>(u), patterns,
                                           dim))) {
      rep.rehydrate_ok = false;
      break;
    }
    ++rep.rehydrate_checked;
  }
  return rep;
}

struct SweepRow {
  int shards = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t degraded = 0;
  uint64_t rss_bytes = 0;
};

/// Closed-loop clients against the sharded service at max speed; e2e
/// latency is Submit -> future resolution, merged across clients.
SweepRow RunShardSweep(core::AdaptableModel& model,
                       const std::vector<data::Sample>& stream, int shards,
                       int clients) {
  shard::ShardedServiceConfig config;
  config.num_shards = shards;
  config.service.workers = 2;
  config.service.max_batch = 8;
  config.store.max_resident_users = 4096;
  shard::ShardedService service(model, config);

  common::Mutex merge_mu;
  common::LatencyHistogram e2e;
  std::atomic<size_t> cursor{0};
  const int64_t t0 = bench::SteadyNowUs();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      common::LatencyHistogram local;
      while (true) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= stream.size()) break;
        const int64_t start = bench::SteadyNowUs();
        service.Submit(stream[i]).get();
        local.Record(static_cast<double>(bench::SteadyNowUs() - start));
      }
      common::MutexLock lock(merge_mu);
      e2e.Merge(local);
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      static_cast<double>(bench::SteadyNowUs() - t0) / 1e6;

  SweepRow row;
  row.shards = shards;
  row.qps = static_cast<double>(stream.size()) / wall_s;
  row.p50_ms = e2e.QuantileUs(0.50) / 1000.0;
  row.p99_ms = e2e.QuantileUs(0.99) / 1000.0;
  for (const auto& group : service.Stats()) {
    row.degraded += group.service.degraded_requests + group.service.timeouts;
  }
  row.rss_bytes = bench::CurrentRssBytes();
  service.Shutdown();
  return row;
}

void WriteCapacityJson(const char* json_path, const CapacityReport& cap,
                       const std::vector<SweepRow>& sweep) {
  std::FILE* f = std::fopen(json_path, "w");  // NOLINT(durable-io): bench
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"capacity\",\n");
  std::fprintf(f, "  \"users\": %zu,\n", cap.users);
  std::fprintf(f, "  \"patterns_per_user\": %d,\n", cap.patterns);
  std::fprintf(f, "  \"pattern_dim\": %d,\n", cap.dim);
  std::fprintf(f, "  \"dense_bytes_per_user\": %.1f,\n",
               cap.dense_bytes_per_user);
  std::fprintf(f, "  \"compact_payload_bytes_per_user\": %.1f,\n",
               cap.compact_payload_per_user);
  std::fprintf(f, "  \"compact_reserved_bytes_per_user\": %.1f,\n",
               cap.compact_reserved_per_user);
  std::fprintf(f, "  \"dense_over_compact_ratio\": %.2f,\n", cap.ratio);
  std::fprintf(f, "  \"rss_before_mb\": %.1f,\n",
               static_cast<double>(cap.rss_before) / (1024.0 * 1024.0));
  std::fprintf(f, "  \"rss_after_mb\": %.1f,\n",
               static_cast<double>(cap.rss_after) / (1024.0 * 1024.0));
  std::fprintf(f, "  \"rehydrate_spot_checks\": %zu,\n",
               cap.rehydrate_checked);
  std::fprintf(f, "  \"rehydrate_bit_identical\": %s,\n",
               cap.rehydrate_ok ? "true" : "false");
  std::fprintf(f, "  \"shard_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(f,
                 "    {\"shards\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"degraded\": %llu, \"rss_mb\": %.1f}%s\n",
                 r.shards, r.qps, r.p50_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.degraded),
                 static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench_report") == 0) {
      report = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (expected --bench_report)\n",
                   argv[i]);
      return 1;
    }
  }

  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("bench_capacity — million-user resident state",
                          env);

  const size_t users = static_cast<size_t>(
      common::EnvInt("ADAMOVE_BENCH_CAP_USERS", 1'000'000));
  const int patterns = common::EnvInt("ADAMOVE_BENCH_CAP_PATTERNS", 4);
  const int dim = env.hidden;

  std::printf("part 1: %zu users x %d patterns x %d dims, compact tier at "
              "full scale\n",
              users, patterns, dim);
  const CapacityReport cap = RunCapacity(users, patterns, dim);
  common::TablePrinter ctable({"users", "dense B/user", "compact B/user",
                               "reserved B/user", "ratio", "rss before MB",
                               "rss after MB", "rehydrate"});
  const std::string rehydrate_cell =
      cap.rehydrate_ok ? std::to_string(cap.rehydrate_checked) + " ok"
                       : std::string("FAILED");
  ctable.AddRow(
      {std::to_string(cap.users),
       common::TablePrinter::Fmt(cap.dense_bytes_per_user, 1),
       common::TablePrinter::Fmt(cap.compact_payload_per_user, 1),
       common::TablePrinter::Fmt(cap.compact_reserved_per_user, 1),
       common::TablePrinter::Fmt(cap.ratio, 2),
       common::TablePrinter::Fmt(
           static_cast<double>(cap.rss_before) / (1024.0 * 1024.0), 1),
       common::TablePrinter::Fmt(
           static_cast<double>(cap.rss_after) / (1024.0 * 1024.0), 1),
       rehydrate_cell});
  ctable.Print();
  std::printf("acceptance: dense/compact ratio %.2fx (target >= 4x) — %s\n",
              cap.ratio, cap.ratio >= 4.0 ? "PASS" : "FAIL");
  if (!cap.rehydrate_ok) {
    std::fprintf(stderr, "rehydration spot-check FAILED — compact tier is "
                         "not lossless\n");
    return 1;
  }

  std::printf("\npart 2: serving p99 per shard-group count\n");
  bench::PreparedDataset prepared =
      bench::Prepare(data::NycLikePreset(), env);
  core::ModelConfig mc = bench::MakeModelConfig(prepared, env);
  core::LightMob model(mc);
  core::TrainConfig tc = bench::MakeTrainConfig(env);
  tc.max_epochs = std::min(tc.max_epochs, 3);  // latency bench, not accuracy
  bench::TrainModel(model, prepared.dataset, tc);

  const size_t requests = static_cast<size_t>(
      common::EnvInt("ADAMOVE_BENCH_CAP_REQUESTS", 2000));
  const int clients = common::EnvInt("ADAMOVE_BENCH_CAP_CLIENTS", 8);
  const std::vector<data::Sample> stream =
      serve::BuildReplayStream(prepared.dataset.test, requests);

  common::TablePrinter stable(
      {"shards", "qps", "e2e p50 ms", "e2e p99 ms", "degraded", "rss MB"});
  std::vector<SweepRow> sweep;
  for (int shards : {1, 2, 4}) {
    SweepRow row = RunShardSweep(model, stream, shards, clients);
    stable.AddRow({std::to_string(row.shards),
                   common::TablePrinter::Fmt(row.qps, 1),
                   common::TablePrinter::Fmt(row.p50_ms, 3),
                   common::TablePrinter::Fmt(row.p99_ms, 3),
                   std::to_string(row.degraded),
                   common::TablePrinter::Fmt(
                       static_cast<double>(row.rss_bytes) /
                           (1024.0 * 1024.0),
                       1)});
    sweep.push_back(row);
  }
  stable.Print();

  if (report) WriteCapacityJson("BENCH_capacity.json", cap, sweep);
  return cap.ratio >= 4.0 ? 0 : 1;
}
