// Reproduces Fig. 4: ablation on model variants.
//   Base Model      = LightMob base (λ=0), frozen            (the LSTM row)
//   w/o LightMob    = base model + PTTA (no contrastive branch)
//   w/o PTTA        = LightMob, frozen at test time
//   T3A             = LightMob + T3A (pseudo-labels + entropy importance)
//   w/ ent          = LightMob + PTTA with entropy importance
//   w/ pseudo-label = LightMob + PTTA with pseudo-labels
//   AdaMove         = LightMob + PTTA (similarity + true labels)
// Shapes to reproduce: every variant below AdaMove; w/o PTTA drops more
// than w/o LightMob; AdaMove far above T3A.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/lightmob.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 4: Ablation on Different Model Variants",
                          env);
  common::TablePrinter table(
      {"Dataset", "Variant", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::TrainConfig train_config = bench::MakeTrainConfig(env);
    core::ModelConfig full_config = bench::MakeModelConfig(prepared, env);
    core::ModelConfig base_config = full_config;
    base_config.lambda = 0.0;

    core::LightMob base(base_config, "BaseModel");
    bench::TrainModel(base, prepared.dataset, train_config);
    core::LightMob lightmob(full_config);
    bench::TrainModel(lightmob, prepared.dataset, train_config);

    core::PttaConfig ptta;  // similarity + true labels
    core::PttaConfig with_ent = ptta;
    with_ent.similarity_importance = false;
    core::PttaConfig with_pseudo = ptta;
    with_pseudo.use_true_labels = false;
    const core::PttaConfig t3a = core::T3aConfig();

    struct Variant {
      const char* name;
      core::LightMob* model;
      const core::PttaConfig* adapter;  // nullptr = frozen
    };
    const Variant variants[] = {
        {"Base Model", &base, nullptr},
        {"w/o LightMob", &base, &ptta},
        {"w/o PTTA", &lightmob, nullptr},
        {"T3A", &lightmob, &t3a},
        {"w/ ent", &lightmob, &with_ent},
        {"w/ pseudo-label", &lightmob, &with_pseudo},
        {"AdaMove", &lightmob, &ptta},
    };
    for (const auto& variant : variants) {
      core::EvalResult result;
      if (variant.adapter == nullptr) {
        result = core::Evaluate(*variant.model, prepared.dataset.test);
      } else {
        core::TestTimeAdapter adapter(*variant.adapter);
        result = core::EvaluateWithAdapter(*variant.model,
                                           prepared.dataset.test, adapter);
      }
      std::vector<std::string> row{preset.name, variant.name};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig4] %s/%s rec@1=%.4f\n", preset.name.c_str(),
                   variant.name, result.metrics.rec1);
    }
  }
  table.Print();
  std::printf("\nPaper shapes: both w/o variants beat Base Model; w/o PTTA "
              "drops more than w/o LightMob (the shift matters most); "
              "AdaMove beats T3A by 32.07%% avg Rec@1; similarity beats "
              "entropy importance; true labels beat pseudo-labels.\n");
  return 0;
}
