// Reproduces Fig. 9: accuracy of AdaMove vs DeepTTA (DeepMove + PTTA, i.e.
// explicit history encoding at test time). Paper shape: on par, with
// AdaMove slightly ahead on NYC and LYMOB — the contrastive distillation
// retains the historical knowledge the explicit branch would provide.

#include <cstdio>

#include "bench/bench_common.h"
#include "baselines/deepmove.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/evaluator.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 9: AdaMove vs DeepTTA on Different Datasets",
                          env);
  common::TablePrinter table(
      {"Dataset", "Method", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::ModelConfig config = bench::MakeModelConfig(prepared, env);
    const core::TrainConfig train_config = bench::MakeTrainConfig(env);

    baselines::DeepMove deeptta(config, "DeepTTA");
    bench::TrainModel(deeptta, prepared.dataset, train_config);
    core::TestTimeAdapter adapter{core::PttaConfig{}};
    core::EvalResult deeptta_result = core::EvaluateWithAdapter(
        deeptta, prepared.dataset.test, adapter);
    std::vector<std::string> row{preset.name, "DeepTTA"};
    for (auto& cell : bench::MetricCells(deeptta_result.metrics)) {
      row.push_back(cell);
    }
    table.AddRow(row);

    core::AdaMove adamove(config);
    adamove.Train(prepared.dataset, train_config);
    core::EvalResult adamove_result =
        adamove.EvaluateTta(prepared.dataset.test);
    row = {preset.name, "AdaMove"};
    for (auto& cell : bench::MetricCells(adamove_result.metrics)) {
      row.push_back(cell);
    }
    table.AddRow(row);
    std::fprintf(stderr, "[fig9] %s DeepTTA=%.4f AdaMove=%.4f\n",
                 preset.name.c_str(), deeptta_result.metrics.rec1,
                 adamove_result.metrics.rec1);
  }
  table.Print();
  std::printf("\nPaper shape: near-parity; AdaMove should not lose "
              "meaningfully despite skipping the history branch at test "
              "time (see Table III for the speed side).\n");
  return 0;
}
