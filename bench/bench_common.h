#ifndef ADAMOVE_BENCH_BENCH_COMMON_H_
#define ADAMOVE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/synthetic.h"

namespace adamove::bench {

/// Environment-tunable knobs shared by every bench binary:
///   ADAMOVE_BENCH_SCALE   — multiplies preset users/locations (default 0.4;
///                           the presets are already laptop-scale)
///   ADAMOVE_BENCH_EPOCHS  — max training epochs (default 8; the paper's 30
///                           with plateau decay is available by raising it)
///   ADAMOVE_BENCH_HIDDEN  — hidden size (default 64 as in the paper)
///   ADAMOVE_BENCH_TRAIN_CAP — training samples per epoch (default 2500,
///                           0 = all; each epoch draws a fresh shuffle)
///   ADAMOVE_BENCH_EVAL_CAP  — test/val samples kept, stride-subsampled
///                           (default 800, 0 = all)
struct BenchEnv {
  double scale = 0.4;
  int max_epochs = 8;
  int hidden = 64;
  int train_cap = 2500;
  int eval_cap = 800;
};

BenchEnv ReadBenchEnv();

/// A dataset preset materialized end-to-end: simulate -> preprocess ->
/// split/samples, with the simulator's shift metadata retained for the
/// case study.
struct PreparedDataset {
  data::DatasetPreset preset;
  data::SyntheticResult world;
  data::PreprocessedData preprocessed;
  data::Dataset dataset;
};

/// Runs the full pipeline for one preset at the given scale.
PreparedDataset Prepare(data::DatasetPreset preset, const BenchEnv& env);

/// Paper-default model config bound to a prepared dataset (λ and c come
/// from the preset; §IV-A embedding dims 48/8/16, LSTM, hidden from env).
core::ModelConfig MakeModelConfig(const PreparedDataset& prepared,
                                  const BenchEnv& env);

/// Paper-default training config capped by the env epoch budget.
core::TrainConfig MakeTrainConfig(const BenchEnv& env);

/// Fit() + gradient training (when applicable) with the shared recipe.
void TrainModel(core::MobilityModel& model, const data::Dataset& dataset,
                const core::TrainConfig& config);

/// "rec1/rec5/rec10/mrr" formatted row cells.
std::vector<std::string> MetricCells(const core::Metrics& metrics);

/// Prints the standard bench header (dataset sizes, env knobs).
void PrintBenchBanner(const std::string& bench_name, const BenchEnv& env);

/// Consumes a `--backend=scalar|simd` flag from `args` if present (other
/// flags are left in place): sets ADAMOVE_KERNEL_BACKEND and reselects the
/// kernel dispatch table, so the choice is active before any benchmark body
/// runs. Without the flag the table is still selected now (env var or best
/// available), so the return value — the active backend description, e.g.
/// "simd (avx2+fma)" — is always meaningful for banners and the
/// google-benchmark context block.
std::string ApplyKernelBackendFlag(std::vector<char*>* args);

/// Monotonic now() in microseconds for latency arithmetic across call
/// sites. All bench timing must go through std::chrono::steady_clock —
/// either common::Timer or this helper; system_clock/clock() are banned
/// here because serving tail-latency numbers must never go backwards under
/// NTP adjustment.
int64_t SteadyNowUs();

/// Resident-set size of this process in bytes (Linux: /proc/self/statm),
/// 0 when unavailable. Serving and capacity benches report it next to the
/// latency columns so a throughput win never hides a memory regression
/// (BENCH_serving.json / BENCH_capacity.json).
uint64_t CurrentRssBytes();

}  // namespace adamove::bench

#endif  // ADAMOVE_BENCH_BENCH_COMMON_H_
