// Reproduces Fig. 10: a case study of one user whose mobility distribution
// shifts. We pick a ground-truth shifted user from the simulator, show the
// before/after location distributions, then compare AdaMove and DeepMove on
// that user's post-shift test trajectories whose targets are *novel*
// locations. Paper shape: AdaMove adapts and hits the new location;
// DeepMove keeps predicting from the stale distribution.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_common.h"
#include "baselines/deepmove.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/metrics.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 10: Case Study of a User's Mobility Data",
                          env);
  bench::PreparedDataset prepared =
      bench::Prepare(data::NycLikePreset(), env);
  const core::ModelConfig config = bench::MakeModelConfig(prepared, env);
  const core::TrainConfig train_config = bench::MakeTrainConfig(env);

  core::AdaMove adamove(config);
  adamove.Train(prepared.dataset, train_config);
  baselines::DeepMove deepmove(config);
  bench::TrainModel(deepmove, prepared.dataset, train_config);

  // Find the shifted user (raw id) with the most post-shift test samples
  // whose target location was never visited before the shift.
  std::set<int64_t> shifted(prepared.world.shifted_users.begin(),
                            prepared.world.shifted_users.end());
  std::map<int64_t, int64_t> raw_to_dense;
  for (size_t u = 0; u < prepared.preprocessed.user_to_raw.size(); ++u) {
    raw_to_dense[prepared.preprocessed.user_to_raw[u]] =
        static_cast<int64_t>(u);
  }
  auto novel_targets = [&](int64_t dense_user) {
    std::set<int64_t> seen_before;
    std::vector<const data::Sample*> picks;
    for (const auto& s : prepared.dataset.train) {
      if (s.user != dense_user) continue;
      for (const auto& p : s.recent) seen_before.insert(p.location);
      seen_before.insert(s.target.location);
    }
    for (const auto& s : prepared.dataset.test) {
      if (s.user != dense_user) continue;
      if (seen_before.count(s.target.location) == 0) picks.push_back(&s);
    }
    return picks;
  };
  int64_t case_user = -1;
  std::vector<const data::Sample*> cases;
  for (int64_t raw : prepared.world.shifted_users) {
    auto it = raw_to_dense.find(raw);
    if (it == raw_to_dense.end()) continue;
    auto picks = novel_targets(it->second);
    if (static_cast<int>(picks.size()) >
        static_cast<int>(cases.size())) {
      case_user = it->second;
      cases = picks;
    }
  }
  if (case_user < 0 || cases.empty()) {
    std::printf("No shifted user with novel-target test samples at this "
                "scale; rerun with a larger ADAMOVE_BENCH_SCALE.\n");
    return 0;
  }

  // Fig. 10(a): before/after location distribution of the case user.
  std::printf("Case user (dense id %lld): location visit counts before vs "
              "after the regime shift\n",
              static_cast<long long>(case_user));
  std::map<int64_t, std::pair<int, int>> dist;
  for (const auto& session :
       prepared.preprocessed.users[static_cast<size_t>(case_user)]
           .sessions) {
    for (const auto& p : session) {
      if (p.timestamp < prepared.world.shift_timestamp) {
        ++dist[p.location].first;
      } else {
        ++dist[p.location].second;
      }
    }
  }
  common::TablePrinter dist_table({"Location", "Before", "After"});
  for (const auto& [loc, counts] : dist) {
    dist_table.AddRow({std::to_string(loc), std::to_string(counts.first),
                       std::to_string(counts.second)});
  }
  dist_table.Print();

  // Fig. 10(b): predictions on up to four novel-target trajectories.
  std::printf("\nPredictions on post-shift trajectories with novel target "
              "locations (paper picks four):\n");
  common::TablePrinter pred_table({"Trajectory", "Truth", "AdaMove",
                                   "AdaMove rank", "DeepMove",
                                   "DeepMove rank"});
  int adamove_hits = 0, deepmove_hits = 0;
  const size_t n_cases = std::min<size_t>(cases.size(), 4);
  for (size_t i = 0; i < n_cases; ++i) {
    const data::Sample& s = *cases[i];
    const auto ada_scores = adamove.Predict(s);
    const auto deep_scores = deepmove.Scores(s);
    const int64_t ada_top = static_cast<int64_t>(std::distance(
        ada_scores.begin(),
        std::max_element(ada_scores.begin(), ada_scores.end())));
    const int64_t deep_top = static_cast<int64_t>(std::distance(
        deep_scores.begin(),
        std::max_element(deep_scores.begin(), deep_scores.end())));
    adamove_hits += (ada_top == s.target.location);
    deepmove_hits += (deep_top == s.target.location);
    pred_table.AddRow(
        {std::to_string(i + 1), std::to_string(s.target.location),
         std::to_string(ada_top),
         std::to_string(core::MetricAccumulator::RankOf(
             ada_scores, s.target.location)),
         std::to_string(deep_top),
         std::to_string(core::MetricAccumulator::RankOf(
             deep_scores, s.target.location))});
  }
  pred_table.Print();
  std::printf("\nTop-1 hits on novel targets: AdaMove %d/%zu, DeepMove "
              "%d/%zu (paper: AdaMove correct, DeepMove misses).\n",
              adamove_hits, n_cases, deepmove_hits, n_cases);

  // Aggregate over *all* novel-target samples of shifted users for a more
  // robust statement of the same effect.
  core::MetricAccumulator ada_acc, deep_acc;
  for (const data::Sample* s : cases) {
    ada_acc.Add(adamove.Predict(*s), s->target.location);
    deep_acc.Add(deepmove.Scores(*s), s->target.location);
  }
  std::printf("All %zu novel-target samples of this user — Rec@1: AdaMove "
              "%.3f vs DeepMove %.3f; Rec@10: %.3f vs %.3f\n",
              cases.size(), ada_acc.Result().rec1, deep_acc.Result().rec1,
              ada_acc.Result().rec10, deep_acc.Result().rec10);
  return 0;
}
