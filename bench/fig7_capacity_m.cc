// Reproduces Fig. 7: impact of the knowledge-base capacity M (patterns kept
// per location in PTTA). Paper shape: rises up to M≈3-5, then slowly
// degrades as less-relevant patterns add noise; LYMOB insensitive.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/lightmob.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner(
      "Fig. 7: Impact of Capacity of the Knowledge Base M", env);
  common::TablePrinter table(
      {"Dataset", "M", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    core::LightMob model(bench::MakeModelConfig(prepared, env));
    bench::TrainModel(model, prepared.dataset, bench::MakeTrainConfig(env));
    for (int m : {1, 3, 5, 8, 12, 15, 20}) {
      core::PttaConfig config;
      config.capacity = m;
      core::TestTimeAdapter adapter(config);
      core::EvalResult result =
          core::EvaluateWithAdapter(model, prepared.dataset.test, adapter);
      std::vector<std::string> row{preset.name, std::to_string(m)};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig7] %s/M=%d rec@1=%.4f\n",
                   preset.name.c_str(), m, result.metrics.rec1);
    }
  }
  table.Print();
  std::printf("\nPaper shape: too-small M starves adaptation; too-large M "
              "admits irrelevant patterns; LYMOB least sensitive.\n");
  return 0;
}
