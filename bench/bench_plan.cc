// Static-plan inference microbenchmarks (DESIGN.md §14): the graph walk vs
// the compiled plan for the encoder forward, and the full request path
// (encode + adapted predict) both ways. Every row carries the `allocs/op`
// column from the common/alloc_probe interposition — the plan rows must
// show 0, and main() enforces that as a hard gate before the timed runs:
// `bench_plan` exits non-zero if a warmed plan-mode request allocates.
//
// Run with --bench_report to also write BENCH_plan.json (google-benchmark
// JSON) next to the binary, with graph and plan rows side by side.
//
// The BM_PlanCompile rows price the one-time plan compile with and without
// static verification (DESIGN.md §15), and main() enforces the verifier's
// cost contract as a second hard gate: verification must add <10% to the
// one-time compile and exactly zero verifier work per steady-state request.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/alloc_probe.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/forward_plan.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "core/ptta.h"
#include "data/point.h"
#include "nn/autograd_mode.h"
#include "nn/kernels.h"
#include "nn/plan/encoder_trace.h"
#include "nn/plan/verifier.h"
#include "nn/tensor.h"

namespace {

using namespace adamove;

// Mode axis shared by every benchmark here: 0 = autograd graph walk,
// 1 = compiled static plan.
constexpr int64_t kGraph = 0;
constexpr int64_t kPlan = 1;

core::ModelConfig BenchConfig(int64_t hidden) {
  core::ModelConfig c;
  c.num_locations = 500;
  c.num_users = 50;
  c.hidden_size = hidden;
  c.encoder = core::EncoderType::kLstm;
  c.lambda = 0.0;
  return c;
}

data::Sample BenchSample(const core::ModelConfig& config, int length) {
  common::Rng rng(17);
  data::Sample sample;
  sample.user = 3;
  int64_t t = 1333238400;
  for (int i = 0; i < length; ++i) {
    sample.recent.push_back(
        {sample.user, rng.UniformInt(0, config.num_locations - 1), t});
    t += 2 * data::kSecondsPerHour;
  }
  sample.target = {sample.user, rng.UniformInt(0, config.num_locations - 1),
                   t};
  return sample;
}

// Same column as microbench_nn: heap allocations per iteration over the
// timed loop. The whole point of this binary is graph rows > 0, plan
// rows == 0. Omitted under sanitizer builds (probe unavailable).
void ReportAllocsPerOp(benchmark::State& state,
                       const common::AllocProbeScope& window) {
  if (!common::AllocProbeAvailable()) return;
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(window.allocations()),
      benchmark::Counter::kAvgIterations);
}

// Encoder forward alone: graph walk vs plan execute, over sequence length
// and hidden size. Args({len, hidden, mode}).
void BM_EncoderForward(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const int64_t hidden = state.range(1);
  const int64_t mode = state.range(2);
  const core::ModelConfig config = BenchConfig(hidden);
  core::LightMob model(config);
  const data::Sample sample = BenchSample(config, length);
  core::ForwardPlanner planner(model);
  core::PlanScratch scratch;
  if (mode == kPlan && !planner.EncodeInto(sample, &scratch)) {
    state.SkipWithError("plan compile failed");
    return;
  }
  nn::NoGradGuard no_grad;
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    if (mode == kPlan) {
      benchmark::DoNotOptimize(planner.EncodeInto(sample, &scratch));
      benchmark::DoNotOptimize(scratch.reps.data());
    } else {
      benchmark::DoNotOptimize(
          model.trajectory_encoder()
              ->Forward(sample.recent, /*training=*/false)
              .data()
              .data());
    }
  }
  ReportAllocsPerOp(state, allocs);
  state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_EncoderForward)
    ->Args({8, 64, kGraph})
    ->Args({8, 64, kPlan})
    ->Args({32, 64, kGraph})
    ->Args({32, 64, kPlan})
    ->Args({32, 128, kGraph})
    ->Args({32, 128, kPlan})
    ->Args({64, 64, kGraph})
    ->Args({64, 64, kPlan});

// The full steady-state request: encode the prefix, then the adapted
// predict against a populated knowledge base. Graph mode is the legacy
// vector-returning path; plan mode is EncodeInto + PredictInto over
// caller-owned scratch. Args({len, mode}).
void BM_PredictRequest(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  const int64_t mode = state.range(1);
  const core::ModelConfig config = BenchConfig(64);
  core::LightMob model(config);
  const data::Sample sample = BenchSample(config, length);
  core::OnlineAdapter adapter{core::PttaConfig{}};
  common::Rng rng(23);
  int64_t t = 1333238400;
  for (int i = 0; i < 64; ++i) {
    std::vector<float> pattern(64);
    for (float& x : pattern) {
      x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    adapter.Observe(sample.user, pattern, rng.UniformInt(0, 99), t);
    t += 600;
  }
  core::ForwardPlanner planner(model);
  core::PlanScratch encode;
  core::OnlineAdapter::PredictScratch predict;
  if (mode == kPlan) {
    if (!planner.EncodeInto(sample, &encode)) {
      state.SkipWithError("plan compile failed");
      return;
    }
    // One warm request so every scratch capacity is grown before timing.
    adapter.PredictInto(model, sample.user,
                        encode.reps.data() + (encode.rows - 1) * encode.cols,
                        encode.cols, t, &predict);
  }
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    if (mode == kPlan) {
      planner.EncodeInto(sample, &encode);
      adapter.PredictInto(model, sample.user,
                          encode.reps.data() +
                              (encode.rows - 1) * encode.cols,
                          encode.cols, t, &predict);
      benchmark::DoNotOptimize(predict.scores.data());
    } else {
      const nn::Tensor reps = model.PrefixRepresentations(sample);
      const int64_t last = reps.rows() - 1;
      std::vector<float> query(static_cast<size_t>(reps.cols()));
      for (int64_t j = 0; j < reps.cols(); ++j) {
        query[static_cast<size_t>(j)] = reps.at(last, j);
      }
      benchmark::DoNotOptimize(
          adapter.Predict(model, sample.user, query, t).data());
    }
  }
  ReportAllocsPerOp(state, allocs);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictRequest)
    ->Args({8, kGraph})
    ->Args({8, kPlan})
    ->Args({32, kGraph})
    ->Args({32, kPlan});

std::vector<const nn::Embedding*> EncoderTables(const core::LightMob& model) {
  const core::PointEmbedding& e = model.trajectory_encoder()->embedding();
  return {&e.location_embedding(), &e.time_embedding(), &e.user_embedding()};
}

// One-time plan compile, priced with and without the static verifier pass
// so its cost contract stays visible in BENCH_plan.json. Args({len,
// verify}); "items" are traced sequence steps.
void BM_PlanCompile(benchmark::State& state) {
  const int64_t length = state.range(0);
  const bool verify = state.range(1) != 0;
  const core::ModelConfig config = BenchConfig(64);
  core::LightMob model(config);
  const std::vector<const nn::Embedding*> tables = EncoderTables(model);
  const nn::SequenceEncoder& seq = model.trajectory_encoder()->seq();
  for (auto _ : state) {
    auto plan = nn::plan::CompileEncoderForward(tables, seq, length);
    if (verify) {
      const nn::plan::VerifyResult result = nn::plan::VerifyPlan(*plan);
      benchmark::DoNotOptimize(result.ok);
    }
    benchmark::DoNotOptimize(plan.get());
  }
  state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_PlanCompile)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// The verifier's cost contract (DESIGN.md §15), enforced before the timed
// runs like the zero-alloc gate below:
//   (a) in the default compile mode, a steady-state request performs ZERO
//       verifier work — counted exactly via ForwardPlanner::verifies(),
//       not timed;
//   (b) the one-time verification pass adds <10% to the plan compile —
//       compared as per-rep minima: the min over many reps estimates the
//       intrinsic cost of each side, so a scheduler preemption landing in
//       one timing window cannot flip the verdict on a shared box.
bool PlanVerifyGate() {
  const core::ModelConfig config = BenchConfig(64);
  core::LightMob model(config);
  const data::Sample sample = BenchSample(config, 32);

  core::ForwardPlanner planner(model);
  planner.SetVerifyModeForTest(nn::plan::VerifyMode::kCompile);
  core::PlanScratch scratch;
  if (!planner.EncodeInto(sample, &scratch)) {
    std::fprintf(stderr, "plan-verify gate: plan compile failed\n");
    return false;
  }
  const int64_t after_warm = planner.verifies();
  for (int i = 0; i < 100; ++i) planner.EncodeInto(sample, &scratch);
  if (planner.verifies() != after_warm) {
    std::fprintf(stderr,
                 "plan-verify gate: FAILED — %lld verifier passes across "
                 "100 steady-state requests (expected 0)\n",
                 static_cast<long long>(planner.verifies() - after_warm));
    return false;
  }

  const std::vector<const nn::Embedding*> tables = EncoderTables(model);
  const nn::SequenceEncoder& seq = model.trajectory_encoder()->seq();
  const auto min_ns = [](const std::vector<int64_t>& ns) {
    return *std::min_element(ns.begin(), ns.end());
  };
  constexpr int kReps = 60;
  constexpr int64_t kLen = 64;
  std::vector<int64_t> compile_ns, verify_ns;
  for (int i = 0; i < kReps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto plan = nn::plan::CompileEncoderForward(tables, seq, kLen);
    const auto t1 = std::chrono::steady_clock::now();
    const nn::plan::VerifyResult result = nn::plan::VerifyPlan(*plan);
    const auto t2 = std::chrono::steady_clock::now();
    if (!result.ok) {
      std::fprintf(stderr, "plan-verify gate: verifier rejected the traced "
                           "plan: %s\n", result.message.c_str());
      return false;
    }
    compile_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    verify_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count());
  }
  const int64_t compile_med = min_ns(compile_ns);
  const int64_t verify_med = min_ns(verify_ns);
  const double pct = compile_med > 0
                         ? 100.0 * static_cast<double>(verify_med) /
                               static_cast<double>(compile_med)
                         : 0.0;
  if (pct >= 10.0) {
    std::fprintf(stderr,
                 "plan-verify gate: FAILED — verification adds %.1f%% to "
                 "the one-time compile (%lld ns vs %lld ns, gate <10%%)\n",
                 pct, static_cast<long long>(verify_med),
                 static_cast<long long>(compile_med));
    return false;
  }
  std::printf("plan-verify gate: OK (verify %lld ns = %.1f%% of %lld ns "
              "compile; 0 verifier passes per steady-state request)\n",
              static_cast<long long>(verify_med), pct,
              static_cast<long long>(compile_med));
  return true;
}

// The hard gate behind the allocs/op column: a warmed plan-mode request
// must perform ZERO heap allocations. Returns false (and prints why) if it
// allocated; bench_plan then exits non-zero without running the timed
// benchmarks, so perf dashboards cannot silently ingest a regressed build.
bool ZeroAllocGate() {
  if (!common::AllocProbeAvailable()) {
    std::printf("zero-alloc gate: SKIPPED (alloc probe unavailable — "
                "sanitizer build)\n");
    return true;
  }
  const core::ModelConfig config = BenchConfig(64);
  core::LightMob model(config);
  const data::Sample sample = BenchSample(config, 32);
  core::OnlineAdapter adapter{core::PttaConfig{}};
  common::Rng rng(23);
  int64_t t = 1333238400;
  for (int i = 0; i < 64; ++i) {
    std::vector<float> pattern(64);
    for (float& x : pattern) {
      x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    adapter.Observe(sample.user, pattern, rng.UniformInt(0, 99), t);
    t += 600;
  }
  core::ForwardPlanner planner(model);
  core::PlanScratch encode;
  core::OnlineAdapter::PredictScratch predict;
  if (!planner.EncodeInto(sample, &encode)) {
    std::fprintf(stderr, "zero-alloc gate: plan compile failed\n");
    return false;
  }
  adapter.PredictInto(model, sample.user,
                      encode.reps.data() + (encode.rows - 1) * encode.cols,
                      encode.cols, t, &predict);
  common::AllocProbeScope window;
  for (int i = 0; i < 100; ++i) {
    planner.EncodeInto(sample, &encode);
    adapter.PredictInto(model, sample.user,
                        encode.reps.data() + (encode.rows - 1) * encode.cols,
                        encode.cols, t, &predict);
  }
  if (window.allocations() != 0 || window.frees() != 0) {
    std::fprintf(stderr,
                 "zero-alloc gate: FAILED — %llu allocations / %llu frees "
                 "across 100 steady-state plan requests (expected 0/0)\n",
                 static_cast<unsigned long long>(window.allocations()),
                 static_cast<unsigned long long>(window.frees()));
    return false;
  }
  std::printf("zero-alloc gate: OK (0 allocations across 100 steady-state "
              "plan requests)\n");
  return true;
}

}  // namespace

// Same custom main as microbench_nn: `--bench_report` writes
// BENCH_plan.json, `--backend=scalar|simd` pins the kernel dispatch, and
// the selection lands in the JSON `context` block.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_plan.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool report = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--bench_report") == 0) {
      report = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (report) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  const std::string backend = adamove::bench::ApplyKernelBackendFlag(&args);
  benchmark::AddCustomContext("kernel_backend", backend);
  benchmark::AddCustomContext("cpu_features",
                              adamove::common::CpuFeatureString());
  if (!ZeroAllocGate()) return 1;
  if (!PlanVerifyGate()) return 1;
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
