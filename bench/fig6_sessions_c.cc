// Reproduces Fig. 6: impact of the number of context sessions c used to
// form the recent trajectory at test time. Paper shape: performance rises
// with c at first, then flattens (NYC/LYMOB) or declines (TKY — strongest
// shift, long contexts blur the short-term pattern).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "data/dataset.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 6: Impact of the Number of Sessions c", env);
  common::TablePrinter table(
      {"Dataset", "c", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    // Train once (training always uses c=1); only the *evaluation* samples
    // change with c.
    core::AdaMove model(bench::MakeModelConfig(prepared, env));
    model.Train(prepared.dataset, bench::MakeTrainConfig(env));
    for (int c : {1, 2, 3, 5, 8}) {
      data::SplitConfig split;
      split.eval_samples.context_sessions = c;
      data::Dataset swept =
          data::MakeDataset(prepared.preprocessed, split);
      core::EvalResult result = model.EvaluateTta(swept.test);
      std::vector<std::string> row{preset.name, std::to_string(c)};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig6] %s/c=%d rec@1=%.4f\n",
                   preset.name.c_str(), c, result.metrics.rec1);
    }
  }
  table.Print();
  std::printf("\nPaper shape: gains saturate after a few sessions; overly "
              "large c can hurt where the shift is strong (TKY).\n");
  return 0;
}
