// Extension ablation (not a paper table): the conclusion's future-work
// direction — teacher-student distillation as an alternative to LightMob's
// contrastive history incorporation. Compares, per dataset:
//   Base             : recent-only model, CE only
//   LightMob         : contrastive history incorporation (the paper's route)
//   Distilled        : base model distilled from a trained DeepMove teacher
// all evaluated frozen and with PTTA.

#include <cstdio>

#include "bench/bench_common.h"
#include "baselines/deepmove.h"
#include "common/table_printer.h"
#include "core/distill.h"
#include "core/evaluator.h"
#include "core/lightmob.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner(
      "Extension: contrastive vs teacher-student distillation", env);
  common::TablePrinter table({"Dataset", "Student", "Frozen Rec@1",
                              "PTTA Rec@1", "PTTA Rec@5"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::TrainConfig tc = bench::MakeTrainConfig(env);
    core::ModelConfig mc = bench::MakeModelConfig(prepared, env);
    core::TestTimeAdapter adapter{core::PttaConfig{}};

    auto report = [&](const char* name, core::AdaptableModel& model) {
      core::EvalResult frozen = core::Evaluate(model, prepared.dataset.test);
      core::EvalResult tta = core::EvaluateWithAdapter(
          model, prepared.dataset.test, adapter);
      table.AddRow({preset.name, name,
                    common::TablePrinter::Fmt(frozen.metrics.rec1),
                    common::TablePrinter::Fmt(tta.metrics.rec1),
                    common::TablePrinter::Fmt(tta.metrics.rec5)});
      std::fprintf(stderr, "[ext_distill] %s/%s frozen=%.4f tta=%.4f\n",
                   preset.name.c_str(), name, frozen.metrics.rec1,
                   tta.metrics.rec1);
    };

    core::ModelConfig base_config = mc;
    base_config.lambda = 0.0;
    core::LightMob base(base_config, "Base");
    bench::TrainModel(base, prepared.dataset, tc);
    report("Base", base);

    core::LightMob lightmob(mc);
    bench::TrainModel(lightmob, prepared.dataset, tc);
    report("LightMob", lightmob);

    baselines::DeepMove teacher(mc, "Teacher");
    bench::TrainModel(teacher, prepared.dataset, tc);
    core::LightMob student(base_config, "Distilled");
    core::DistillConfig dc;
    core::TrainConfig student_tc = tc;
    core::DistillTrain(teacher, student, prepared.dataset, student_tc, dc);
    report("Distilled", student);
  }
  table.Print();
  std::printf("\nBoth knowledge-transfer routes keep the test-time model "
              "recent-only; the comparison shows how far the future-work "
              "distillation route gets relative to the paper's contrastive "
              "route at this scale.\n");
  return 0;
}
