// Serving load test: replays the synthetic test split's check-ins against
// serve::PredictionService with a closed-loop load generator and reports
// throughput plus per-stage tail latency. The scaling claim under test:
// micro-batched workers over the mutex-striped SessionStore give near-linear
// QPS in worker count, because encoder forwards are read-only and PTTA state
// is sharded per user.
//
// Extra knobs (on top of the shared ADAMOVE_BENCH_* ones):
//   ADAMOVE_BENCH_SERVE_REQUESTS — replayed requests per run (default 2000)
//   ADAMOVE_BENCH_SERVE_CLIENTS  — closed-loop client threads (default 8)
//   ADAMOVE_BENCH_SERVE_QPS      — offered QPS, 0 = max speed (default 0)
//   ADAMOVE_BENCH_SERVE_CAP      — SessionStore resident-user cap (default 0)
//
// Flags:
//   --snapshot_every_n=N — additionally run the durability pass: snapshot
//       the SessionStore every N completed requests while traffic is live,
//       then cold-start a fresh service from the durable artifact and
//       measure restore-to-first-ok-prediction time.
//   --bench_report       — write BENCH_serving_durability.json next to the
//       binary (implies the durability pass with N = 500 if no
//       --snapshot_every_n was given).
//   --overload           — run ONLY the elastic-adaptation overload pass
//       (DESIGN.md §16): measure the inline saturation QPS and unloaded
//       p99, then replay true open-loop bursts at 1x/2x/3x saturation
//       against inline vs elastic scheduling, reporting the
//       accuracy-vs-QPS frontier into BENCH_overload.json.
//   --overload_gate      — additionally assert the acceptance gate (exit 1
//       on failure): at 2x saturation the elastic run holds p99 near the
//       unloaded baseline while inline collapses (>10x p99 or timeouts),
//       with staleness depth bounded.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu_features.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "core/lightmob.h"
#include "nn/kernels.h"
#include "serve/adapt_scheduler.h"
#include "serve/load_gen.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"

using namespace adamove;

namespace {

struct RunReport {
  int workers = 0;
  int max_batch = 0;
  double qps = 0;
  serve::LoadGenResult load;
  serve::ServiceStats stats;
  size_t resident_users = 0;
  uint64_t evictions = 0;
  /// Process RSS right after the run drains — latency wins must not hide
  /// a memory regression.
  uint64_t rss_bytes = 0;
};

RunReport RunOnce(core::AdaptableModel& model,
                  const std::vector<data::Sample>& stream, int workers,
                  int max_batch, const serve::LoadGenConfig& lg,
                  size_t resident_cap,
                  serve::ServiceForwardMode forward =
                      serve::ServiceForwardMode::kAuto) {
  serve::SessionStoreConfig sc;
  sc.max_resident_users = resident_cap;
  serve::SessionStore store(sc);
  serve::ServiceConfig svc;
  svc.workers = workers;
  svc.max_batch = max_batch;
  svc.forward = forward;
  serve::PredictionService service(model, store, svc);
  RunReport report;
  report.workers = workers;
  report.max_batch = max_batch;
  report.load = serve::RunLoadGen(service, stream, lg);
  service.Shutdown();
  report.stats = service.Stats();
  report.qps = report.load.qps;
  report.resident_users = store.UserCount();
  report.evictions = store.EvictionCount();
  report.rss_bytes = bench::CurrentRssBytes();
  return report;
}

std::string Ms(const common::LatencyHistogram& h, double q) {
  return common::TablePrinter::Fmt(h.QuantileUs(q) / 1000.0, 3);
}

/// Outcome of the durability pass: snapshot latency under live traffic plus
/// the recovery-side numbers a restart budget is built from.
struct DurabilityReport {
  size_t every_n = 0;
  common::LatencyHistogram snapshot_us;  // per-commit wall time, live traffic
  serve::SnapshotStats last;             // accounting of the final artifact
  serve::SnapshotStats restored;         // what the warm start brought back
  double restore_wall_ms = 0;   // WarmStartAsync begin -> restore complete
  double first_ok_ms = 0;       // WarmStartAsync begin -> first kOk scores
  size_t probes_before_ok = 0;  // degraded (frozen-model) answers before it
  uint64_t warm_start_fallbacks = 0;
};

/// Phase 1: replay the stream with a snapshotter committing the store every
/// `every_n` completed requests (the durable artifact is the final commit).
/// Phase 2: warm-start a fresh service from that artifact while probing it
/// with live requests, timing how long until the first fully adapted (kOk)
/// prediction comes back.
DurabilityReport RunDurability(core::AdaptableModel& model,
                               const std::vector<data::Sample>& stream,
                               const serve::LoadGenConfig& lg,
                               size_t resident_cap, size_t every_n,
                               const std::string& path) {
  DurabilityReport rep;
  rep.every_n = every_n;
  {
    serve::SessionStoreConfig sc;
    sc.max_resident_users = resident_cap;
    serve::SessionStore store(sc);
    serve::ServiceConfig svc;
    svc.workers = 2;
    svc.max_batch = 8;
    serve::PredictionService service(model, store, svc);
    std::atomic<bool> load_done{false};
    std::thread load([&] {
      serve::RunLoadGen(service, stream, lg);
      load_done.store(true, std::memory_order_release);
    });
    // The snapshotter rides alongside live traffic: Snapshot locks one
    // shard at a time, so serving never globally stalls — the per-commit
    // latency measured here is the cost a production checkpointer pays.
    uint64_t next = every_n;
    while (!load_done.load(std::memory_order_acquire)) {
      if (service.Stats().completed >= next) {
        const int64_t t0 = bench::SteadyNowUs();
        serve::SnapshotStats s;
        if (store.Snapshot(path, &s)) {
          rep.snapshot_us.Record(
              static_cast<double>(bench::SteadyNowUs() - t0));
          rep.last = s;
        }
        next += every_n;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    load.join();
    service.Shutdown();
    // Final commit after the run drains: the artifact the restart recovers.
    const int64_t t0 = bench::SteadyNowUs();
    serve::SnapshotStats s;
    if (store.Snapshot(path, &s)) {
      rep.snapshot_us.Record(static_cast<double>(bench::SteadyNowUs() - t0));
      rep.last = s;
    }
  }
  {
    serve::SessionStoreConfig sc;
    sc.max_resident_users = resident_cap;
    serve::SessionStore store(sc);
    serve::ServiceConfig svc;
    svc.workers = 2;
    svc.max_batch = 8;
    serve::PredictionService service(model, store, svc);
    const int64_t t0 = bench::SteadyNowUs();
    service.WarmStartAsync(path);
    // A watcher times the restore itself; the main thread probes the
    // serving path. Not-yet-restored users come back kDegraded (frozen
    // base model), so the first kOk marks real recovered-state serving.
    std::thread watcher([&] {
      service.WaitWarmStart(&rep.restored);
      rep.restore_wall_ms =
          static_cast<double>(bench::SteadyNowUs() - t0) / 1000.0;
    });
    for (size_t i = 0;; ++i) {
      std::future<serve::Prediction> fut =
          service.Submit(stream[i % stream.size()]);
      if (fut.get().outcome == serve::RequestOutcome::kOk) {
        rep.first_ok_ms =
            static_cast<double>(bench::SteadyNowUs() - t0) / 1000.0;
        rep.probes_before_ok = i;
        break;
      }
    }
    watcher.join();
    service.Shutdown();
    rep.warm_start_fallbacks = service.Stats().warm_start_fallbacks;
  }
  std::remove(path.c_str());
  return rep;
}

/// The serving baseline artifact (BENCH_serving.json): one entry per
/// worker/batch config with throughput, end-to-end tails, and process RSS —
/// plus, when the forward-mode comparison ran, a `forward_compare` block
/// with the graph vs plan paced-rate rows.
void WriteServingJson(const char* json_path, size_t requests,
                      const std::vector<RunReport>& reports,
                      const RunReport* graph_run, const RunReport* plan_run,
                      double paced_qps) {
  std::FILE* f = std::fopen(json_path, "w");  // NOLINT(durable-io): bench
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               nn::kernels::BackendDescription().c_str());
  std::fprintf(f, "  \"requests\": %zu,\n", requests);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const RunReport& r = reports[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"batch\": %d, \"qps\": %.1f, "
                 "\"e2e_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, "
                 "\"degraded\": %llu, \"rss_mb\": %.1f}%s\n",
                 r.workers, r.max_batch, r.qps,
                 r.load.e2e_us.QuantileUs(0.50) / 1000.0,
                 r.load.e2e_us.QuantileUs(0.95) / 1000.0,
                 r.load.e2e_us.QuantileUs(0.99) / 1000.0,
                 static_cast<unsigned long long>(r.stats.degraded_requests +
                                                 r.stats.timeouts),
                 static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0),
                 i + 1 < reports.size() ? "," : "");
  }
  if (graph_run != nullptr && plan_run != nullptr) {
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"forward_compare\": {\n");
    std::fprintf(f, "    \"offered_qps\": %.1f,\n", paced_qps);
    const RunReport* rows[] = {graph_run, plan_run};
    const char* names[] = {"graph", "plan"};
    for (int i = 0; i < 2; ++i) {
      const RunReport& r = *rows[i];
      std::fprintf(f,
                   "    \"%s\": {\"e2e_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
                   "\"p99\": %.3f}, \"plan_fallbacks\": %llu}%s\n",
                   names[i], r.load.e2e_us.QuantileUs(0.50) / 1000.0,
                   r.load.e2e_us.QuantileUs(0.95) / 1000.0,
                   r.load.e2e_us.QuantileUs(0.99) / 1000.0,
                   static_cast<unsigned long long>(r.stats.plan_fallbacks),
                   i == 0 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
  } else {
    std::fprintf(f, "  ]\n}\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
}

void WriteDurabilityJson(const char* json_path, const DurabilityReport& r) {
  std::FILE* f = std::fopen(json_path, "w");  // NOLINT(durable-io): bench
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving_durability\",\n");
  std::fprintf(f, "  \"snapshot_every_n\": %zu,\n", r.every_n);
  std::fprintf(f, "  \"snapshots\": %llu,\n",
               static_cast<unsigned long long>(r.snapshot_us.Count()));
  std::fprintf(f, "  \"snapshot_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
               "\"max\": %.3f},\n",
               r.snapshot_us.QuantileUs(0.50) / 1000.0,
               r.snapshot_us.QuantileUs(0.95) / 1000.0,
               r.snapshot_us.MaxUs() / 1000.0);
  std::fprintf(f, "  \"snapshot_users\": %zu,\n", r.last.users);
  std::fprintf(f, "  \"snapshot_patterns\": %zu,\n", r.last.patterns);
  std::fprintf(f, "  \"snapshot_bytes\": %llu,\n",
               static_cast<unsigned long long>(r.last.bytes));
  std::fprintf(f, "  \"restore_wall_ms\": %.3f,\n", r.restore_wall_ms);
  std::fprintf(f, "  \"restore_to_first_ok_ms\": %.3f,\n", r.first_ok_ms);
  std::fprintf(f, "  \"degraded_probes_before_first_ok\": %zu,\n",
               r.probes_before_ok);
  std::fprintf(f, "  \"warm_start_fallbacks\": %llu,\n",
               static_cast<unsigned long long>(r.warm_start_fallbacks));
  std::fprintf(f, "  \"restored_users\": %zu,\n", r.restored.users);
  std::fprintf(f, "  \"restored_patterns\": %zu\n", r.restored.patterns);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
}

// --- elastic-adaptation overload pass (DESIGN.md §16) ----------------------

/// One burst-intensity run of the overload pass: an open-loop replay at a
/// fixed offered rate against one scheduling mode, plus the post-burst
/// drain accounting.
struct OverloadRun {
  const char* mode = "inline";  // "inline" | "elastic"
  double mult = 0;              // offered rate as a multiple of saturation
  double offered_qps = 0;
  serve::LoadGenResult load;
  serve::ServiceStats stats;
  size_t dirty_before_drain = 0;
  size_t pending_before_drain = 0;
  double HitRate() const {
    return load.scored == 0
               ? 0.0
               : static_cast<double>(load.hits) /
                     static_cast<double>(load.scored);
  }
};

OverloadRun RunOverloadOnce(core::AdaptableModel& model,
                            const std::vector<data::Sample>& stream,
                            size_t requests, double mult, double offered_qps,
                            bool elastic, int64_t deadline_us,
                            size_t queue_capacity) {
  serve::SessionStore store{serve::SessionStoreConfig{}};
  serve::ServiceConfig svc;
  svc.workers = 4;
  svc.max_batch = 8;
  svc.max_wait_us = 500;
  svc.queue_capacity = queue_capacity;
  svc.deadline_us = deadline_us;
  svc.adapt.mode =
      elastic ? serve::AdaptMode::kElastic : serve::AdaptMode::kInline;
  serve::PredictionService service(model, store, svc);

  serve::LoadGenConfig lg;
  lg.open_loop = true;  // arrivals fire on schedule: overload is reachable
  lg.target_qps = offered_qps;
  lg.clients = 8;
  lg.max_requests = requests;
  lg.max_in_flight = 4096;
  lg.track_hits = true;  // the accuracy axis of the frontier

  OverloadRun run;
  run.mode = elastic ? "elastic" : "inline";
  run.mult = mult;
  run.offered_qps = offered_qps;
  run.load = serve::RunLoadGen(service, stream, lg);
  service.Shutdown();
  run.stats = service.Stats();
  // Post-burst convergence: pressure is gone, one drain retires every
  // pending delta (the bit-identity invariant itself is pinned by
  // tests/serve/overload_chaos_test, not re-proven per bench run).
  run.dirty_before_drain = store.DirtyUserCount();
  run.pending_before_drain = store.PendingDeltaCount();
  store.DrainDirtyUsers(0);
  return run;
}

/// Acceptance gate (ISSUE 10): evaluated on the 2x-saturation burst.
struct OverloadGate {
  bool evaluated = false;
  bool inline_collapsed = false;   // p99 >= 10x unloaded, or timeouts
  bool elastic_held = false;       // p99 within the elastic budget
  bool staleness_bounded = false;  // max depth under the structural bound
  double elastic_budget_us = 0;
  double inline_p99_us = 0;
  double elastic_p99_us = 0;
  bool Pass() const {
    return evaluated && inline_collapsed && elastic_held && staleness_bounded;
  }
};

void WriteOverloadJson(const char* json_path, double saturation_qps,
                       double unloaded_p99_us, int64_t deadline_us,
                       size_t requests, const std::vector<OverloadRun>& runs,
                       const OverloadGate& gate) {
  std::FILE* f = std::fopen(json_path, "w");  // NOLINT(durable-io): bench
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"overload\",\n");
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               nn::kernels::BackendDescription().c_str());
  std::fprintf(f, "  \"cores\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"requests_per_run\": %zu,\n", requests);
  std::fprintf(f, "  \"saturation_qps_inline\": %.1f,\n", saturation_qps);
  std::fprintf(f, "  \"unloaded_p99_ms\": %.3f,\n", unloaded_p99_us / 1000.0);
  std::fprintf(f, "  \"deadline_ms\": %.3f,\n",
               static_cast<double>(deadline_us) / 1000.0);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const OverloadRun& r = runs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"mult\": %.1f, \"offered_qps\": %.1f, "
        "\"delivered_qps\": %.1f, "
        "\"e2e_ms\": {\"p50\": %.3f, \"p99\": %.3f}, "
        "\"timeouts\": %llu, \"shed\": %zu, \"dropped_arrivals\": %zu, "
        "\"hit_rate\": %.4f, "
        "\"stale\": {\"requests\": %llu, \"depth_p50\": %.1f, "
        "\"depth_max\": %.1f, \"deferred_ingests\": %llu, "
        "\"coalesced\": %llu, \"lazy_rebuilds\": %llu, "
        "\"forced_inline\": %llu, \"background_drains\": %llu, "
        "\"mode_switches\": %llu}, "
        "\"drain\": {\"dirty_users\": %zu, \"pending_deltas\": %zu}}%s\n",
        r.mode, r.mult, r.offered_qps, r.load.qps,
        r.load.e2e_us.QuantileUs(0.50) / 1000.0,
        r.load.e2e_us.QuantileUs(0.99) / 1000.0,
        static_cast<unsigned long long>(r.stats.timeouts), r.load.shed,
        r.load.dropped_arrivals, r.HitRate(),
        static_cast<unsigned long long>(r.stats.stale_adapt_requests),
        r.stats.stale_depth.QuantileUs(0.50), r.stats.stale_depth.MaxUs(),
        static_cast<unsigned long long>(r.stats.deferred_ingests),
        static_cast<unsigned long long>(r.stats.coalesced_ingests),
        static_cast<unsigned long long>(r.stats.lazy_rebuilds),
        static_cast<unsigned long long>(r.stats.forced_inline_rebuilds),
        static_cast<unsigned long long>(r.stats.background_drains),
        static_cast<unsigned long long>(r.stats.adapt_mode_switches),
        r.dirty_before_drain, r.pending_before_drain,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gate\": {\"evaluated\": %s, "
               "\"inline_collapsed\": %s, \"elastic_held\": %s, "
               "\"elastic_budget_ms\": %.3f, "
               "\"inline_p99_ms\": %.3f, \"elastic_p99_ms\": %.3f, "
               "\"staleness_bounded\": %s, \"pass\": %s}\n",
               gate.evaluated ? "true" : "false",
               gate.inline_collapsed ? "true" : "false",
               gate.elastic_held ? "true" : "false",
               gate.elastic_budget_us / 1000.0, gate.inline_p99_us / 1000.0,
               gate.elastic_p99_us / 1000.0,
               gate.staleness_bounded ? "true" : "false",
               gate.Pass() ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
}

/// The overload pass: saturation + unloaded baseline, then open-loop bursts
/// at 1x/2x/3x saturation against inline vs elastic scheduling. Returns the
/// gate verdict (meaningful only when the caller asked to enforce it).
OverloadGate RunOverloadPass(core::AdaptableModel& model,
                             const std::vector<data::Sample>& stream,
                             size_t requests) {
  // Phase A: closed-loop maximum through the inline path — the saturation
  // reference every burst intensity is a multiple of.
  serve::LoadGenConfig closed;
  closed.clients = 16;
  closed.max_requests = requests;
  const RunReport saturation = RunOnce(model, stream, 4, 8, closed, 0);
  const double saturation_qps = std::max(saturation.qps, 1.0);

  // Phase B: the unloaded latency baseline — the same inline service paced
  // far below saturation, so p99 is pure service time plus batching wait.
  serve::LoadGenConfig paced = closed;
  paced.target_qps = std::max(saturation_qps * 0.3, 10.0);
  const RunReport unloaded = RunOnce(model, stream, 4, 8, paced, 0);
  const double unloaded_p99_us = unloaded.load.e2e_us.QuantileUs(0.99);

  // The burst deadline sits well past the gate's 10x-collapse bar, so an
  // inline p99 near the deadline is already collapsed — and any queue wait
  // beyond it degrades to the frozen fallback as kTimedOut (PR 3 ladder).
  const auto deadline_us =
      static_cast<int64_t>(std::max(12.0 * unloaded_p99_us, 25000.0));

  // The two serving postures under comparison (DESIGN.md §16). The
  // baseline keeps the repo's pre-scheduler default: inline adaptation
  // behind a deep admission queue, which is exactly the latency-collapse
  // failure mode — at 2x saturation the queue holds ~25x-saturation-
  // seconds of wait, far past any deadline. The elastic posture is
  // pressure-aware end to end: the admission queue is scaled so a full
  // queue is still inside the latency budget (excess arrivals shed at the
  // door instead of rotting in line), and the scheduler defers adaptation
  // under pressure so the served requests keep their adapted accuracy.
  const size_t baseline_queue = serve::ServiceConfig{}.queue_capacity;
  const double elastic_budget_us = std::max(1.5 * unloaded_p99_us, 2000.0);
  const size_t elastic_queue = std::max<size_t>(
      8, static_cast<size_t>(saturation_qps * elastic_budget_us * 0.5 / 1e6));

  std::printf("\noverload pass: inline saturation %.1f qps, unloaded p99 "
              "%.3f ms, burst deadline %.1f ms, queues: baseline %zu / "
              "elastic %zu\n",
              saturation_qps, unloaded_p99_us / 1000.0,
              static_cast<double>(deadline_us) / 1000.0, baseline_queue,
              elastic_queue);

  // The structural staleness bound: max_stale pending deltas plus one
  // request's worth of freshly buffered transitions.
  size_t max_window = 0;
  for (const auto& sample : stream) {
    max_window = std::max(max_window, sample.recent.size());
  }
  const double stale_bound = static_cast<double>(
      serve::AdaptSchedulerConfig{}.Resolve().max_stale + max_window);

  std::vector<OverloadRun> runs;
  common::TablePrinter table({"mode", "mult", "offered", "delivered",
                              "p50 ms", "p99 ms", "timeouts", "shed",
                              "dropped", "hit@1", "stale", "depth max",
                              "drained"});
  const double mults[] = {1.0, 2.0, 3.0};
  for (const double mult : mults) {
    for (const bool elastic : {false, true}) {
      OverloadRun run = RunOverloadOnce(
          model, stream, requests, mult, mult * saturation_qps, elastic,
          deadline_us, elastic ? elastic_queue : baseline_queue);
      table.AddRow(
          {run.mode, common::TablePrinter::Fmt(mult, 1),
           common::TablePrinter::Fmt(run.offered_qps, 1),
           common::TablePrinter::Fmt(run.load.qps, 1),
           Ms(run.load.e2e_us, 0.50), Ms(run.load.e2e_us, 0.99),
           std::to_string(run.stats.timeouts), std::to_string(run.load.shed),
           std::to_string(run.load.dropped_arrivals),
           common::TablePrinter::Fmt(run.HitRate(), 3),
           std::to_string(run.stats.stale_adapt_requests),
           common::TablePrinter::Fmt(run.stats.stale_depth.MaxUs(), 0),
           std::to_string(run.pending_before_drain)});
      runs.push_back(std::move(run));
    }
  }
  table.Print();

  // Gate: the 2x burst is the headline row. The elastic budget keeps the
  // 1.5x-of-unloaded bar with a small absolute floor so a sub-ms unloaded
  // p99 doesn't turn scheduler jitter into a verdict.
  OverloadGate gate;
  gate.elastic_budget_us = elastic_budget_us;
  const OverloadRun* inline2x = nullptr;
  const OverloadRun* elastic2x = nullptr;
  for (const OverloadRun& r : runs) {
    if (r.mult == 2.0 && std::strcmp(r.mode, "inline") == 0) inline2x = &r;
    if (r.mult == 2.0 && std::strcmp(r.mode, "elastic") == 0) elastic2x = &r;
  }
  if (inline2x != nullptr && elastic2x != nullptr) {
    gate.evaluated = true;
    gate.inline_p99_us = inline2x->load.e2e_us.QuantileUs(0.99);
    gate.elastic_p99_us = elastic2x->load.e2e_us.QuantileUs(0.99);
    gate.inline_collapsed =
        inline2x->load.e2e_us.QuantileUs(0.99) >= 10.0 * unloaded_p99_us ||
        inline2x->stats.timeouts > 0;
    gate.elastic_held =
        elastic2x->load.e2e_us.QuantileUs(0.99) <= gate.elastic_budget_us;
    gate.staleness_bounded =
        elastic2x->stats.stale_depth.MaxUs() <= stale_bound;
    std::printf("\ngate @2x: inline %s (p99 %.3f ms, %llu timeouts), "
                "elastic %s (p99 %.3f ms vs budget %.3f ms), staleness %s "
                "(depth max %.0f vs bound %.0f)\n",
                gate.inline_collapsed ? "collapsed" : "DID NOT collapse",
                inline2x->load.e2e_us.QuantileUs(0.99) / 1000.0,
                static_cast<unsigned long long>(inline2x->stats.timeouts),
                gate.elastic_held ? "held" : "DID NOT hold",
                elastic2x->load.e2e_us.QuantileUs(0.99) / 1000.0,
                gate.elastic_budget_us / 1000.0,
                gate.staleness_bounded ? "bounded" : "UNBOUNDED",
                elastic2x->stats.stale_depth.MaxUs(), stale_bound);
    const unsigned cores = std::thread::hardware_concurrency();
    if (!gate.elastic_held && cores < 4) {
      std::printf("note: with %u core%s visible, saturated service time "
                  "itself exceeds the unloaded-p99 budget (every worker "
                  "timeslices the load generator) — the elastic bar needs "
                  ">= 4 cores; compare the inline/elastic p99 ratio "
                  "instead.\n",
                  cores, cores == 1 ? "" : "s");
    }
  }
  WriteOverloadJson("BENCH_overload.json", saturation_qps, unloaded_p99_us,
                    deadline_us, requests, runs, gate);
  return gate;
}

}  // namespace

int main(int argc, char** argv) {
  bool report = false;
  bool overload = false;
  bool overload_gate = false;
  size_t snapshot_every_n = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench_report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--overload_gate") == 0) {
      overload = true;
      overload_gate = true;
    } else if (std::strncmp(argv[i], "--snapshot_every_n=", 19) == 0) {
      snapshot_every_n =
          static_cast<size_t>(std::strtoull(argv[i] + 19, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expected --bench_report, --overload, "
                   "--overload_gate or --snapshot_every_n=N)\n",
                   argv[i]);
      return 1;
    }
  }
  if (report && snapshot_every_n == 0) snapshot_every_n = 500;

  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("bench_serving — concurrent online prediction",
                          env);
  // Every latency number below depends on which kernel arithmetic served
  // it, so the table header names the active backend (ADAMOVE_KERNEL_BACKEND
  // overrides the CPUID-selected default).
  std::printf("kernel backend: %s (cpu: %s)\n",
              nn::kernels::BackendDescription().c_str(),
              common::CpuFeatureString().c_str());

  bench::PreparedDataset prepared =
      bench::Prepare(data::NycLikePreset(), env);
  core::ModelConfig mc = bench::MakeModelConfig(prepared, env);
  core::LightMob model(mc);
  core::TrainConfig tc = bench::MakeTrainConfig(env);
  // Latency, not accuracy, is under test — a short warm-up train suffices.
  tc.max_epochs = std::min(tc.max_epochs, 3);
  bench::TrainModel(model, prepared.dataset, tc);

  const size_t requests = static_cast<size_t>(
      common::EnvInt("ADAMOVE_BENCH_SERVE_REQUESTS", 2000));
  std::vector<data::Sample> stream =
      serve::BuildReplayStream(prepared.dataset.test, requests);

  if (overload) {
    const OverloadGate gate = RunOverloadPass(model, stream, requests);
    if (overload_gate && !gate.Pass()) {
      std::fprintf(stderr, "overload gate FAILED\n");
      return 1;
    }
    return 0;
  }

  serve::LoadGenConfig lg;
  // Offered concurrency must exceed max_batch by the worker count,
  // otherwise the whole closed-loop load fits into one worker's batch and
  // extra workers starve (clients block on their single in-flight request).
  lg.clients = common::EnvInt("ADAMOVE_BENCH_SERVE_CLIENTS", 32);
  lg.target_qps = common::EnvDouble("ADAMOVE_BENCH_SERVE_QPS", 0.0);
  lg.max_requests = requests;
  const size_t cap =
      static_cast<size_t>(common::EnvInt("ADAMOVE_BENCH_SERVE_CAP", 0));

  std::printf("replay: %zu requests, %d closed-loop clients, offered "
              "qps %s\n\n",
              requests, lg.clients,
              lg.target_qps > 0 ? std::to_string(lg.target_qps).c_str()
                                : "max");

  common::TablePrinter table(
      {"workers", "batch", "qps", "e2e p50 ms", "e2e p95 ms", "e2e p99 ms",
       "queue p95 ms", "encode p95 ms", "adapt p95 ms", "mean batch",
       "resident", "evicted", "degraded", "rss MB"});
  struct Config {
    int workers;
    int max_batch;
  };
  const Config configs[] = {{1, 1}, {1, 8}, {2, 8}, {4, 8}};
  double single_qps = 0, quad_qps = 0;
  std::vector<RunReport> reports;
  for (const Config& c : configs) {
    RunReport r =
        RunOnce(model, stream, c.workers, c.max_batch, lg, cap);
    if (c.workers == 1 && c.max_batch == 8) single_qps = r.qps;
    if (c.workers == 4) quad_qps = r.qps;
    table.AddRow({std::to_string(c.workers), std::to_string(c.max_batch),
                  common::TablePrinter::Fmt(r.qps, 1),
                  Ms(r.load.e2e_us, 0.50), Ms(r.load.e2e_us, 0.95),
                  Ms(r.load.e2e_us, 0.99), Ms(r.stats.queue_us, 0.95),
                  Ms(r.stats.encode_us, 0.95), Ms(r.stats.adapt_us, 0.95),
                  common::TablePrinter::Fmt(r.stats.MeanBatchSize(), 2),
                  std::to_string(r.resident_users),
                  std::to_string(r.evictions),
                  std::to_string(r.stats.degraded_requests +
                                 r.stats.timeouts),
                  common::TablePrinter::Fmt(
                      static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0),
                      1)});
    reports.push_back(std::move(r));
  }
  table.Print();

  // Forward-mode comparison at a fixed offered rate: graph walk vs static
  // plans on the same 4-worker config, paced well below the closed-loop
  // max so the delta is latency, not saturation. The static-plan claim
  // under test (DESIGN.md §14): p50 improves at fixed QPS because the
  // steady state performs zero per-request heap allocations.
  const double paced_qps =
      lg.target_qps > 0 ? lg.target_qps : std::max(quad_qps * 0.5, 50.0);
  serve::LoadGenConfig paced = lg;
  paced.target_qps = paced_qps;
  std::printf("\nforward-mode comparison at %.1f offered qps "
              "(ADAMOVE_FORWARD equivalent, same arithmetic both ways):\n",
              paced_qps);
  RunReport graph_run = RunOnce(model, stream, 4, 8, paced, cap,
                                serve::ServiceForwardMode::kGraph);
  RunReport plan_run = RunOnce(model, stream, 4, 8, paced, cap,
                               serve::ServiceForwardMode::kPlan);
  common::TablePrinter ftable({"forward", "qps", "e2e p50 ms", "e2e p95 ms",
                               "e2e p99 ms", "encode p95 ms",
                               "plan fallbacks"});
  const struct {
    const char* name;
    const RunReport* r;
  } frows[] = {{"graph", &graph_run}, {"plan", &plan_run}};
  for (const auto& row : frows) {
    ftable.AddRow({row.name, common::TablePrinter::Fmt(row.r->qps, 1),
                   Ms(row.r->load.e2e_us, 0.50), Ms(row.r->load.e2e_us, 0.95),
                   Ms(row.r->load.e2e_us, 0.99),
                   Ms(row.r->stats.encode_us, 0.95),
                   std::to_string(row.r->stats.plan_fallbacks)});
  }
  ftable.Print();
  const double graph_p50 = graph_run.load.e2e_us.QuantileUs(0.50);
  const double plan_p50 = plan_run.load.e2e_us.QuantileUs(0.50);
  if (graph_p50 > 0) {
    std::printf("plan p50 vs graph p50 at fixed qps: %+.1f%% "
                "(negative = plan faster)\n",
                (plan_p50 - graph_p50) / graph_p50 * 100.0);
  }

  if (report) {
    WriteServingJson("BENCH_serving.json", requests, reports, &graph_run,
                     &plan_run, paced_qps);
  }
  if (single_qps > 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("\n4-worker speedup over single worker: %.2fx "
                "(target: >= 2x; %u core%s visible)\n",
                quad_qps / single_qps, cores, cores == 1 ? "" : "s");
    if (cores < 4) {
      std::printf("note: the encode stage is CPU-bound, so the >= 2x "
                  "target needs >= 4 cores — on this host extra workers "
                  "can only timeslice.\n");
    }
  }

  if (snapshot_every_n > 0) {
    const std::string snap_path =
        (std::filesystem::temp_directory_path() / "adamove_bench_serving.snap")
            .string();
    std::printf("\ndurability: snapshot every %zu completed requests, then "
                "warm-start restore\n",
                snapshot_every_n);
    DurabilityReport dur = RunDurability(model, stream, lg, cap,
                                         snapshot_every_n, snap_path);
    common::TablePrinter dtable(
        {"snapshots", "snap p50 ms", "snap p95 ms", "snap max ms", "users",
         "patterns", "bytes", "restore ms", "first-ok ms", "frozen probes"});
    dtable.AddRow({std::to_string(dur.snapshot_us.Count()),
                   Ms(dur.snapshot_us, 0.50), Ms(dur.snapshot_us, 0.95),
                   common::TablePrinter::Fmt(dur.snapshot_us.MaxUs() / 1000.0,
                                             3),
                   std::to_string(dur.last.users),
                   std::to_string(dur.last.patterns),
                   std::to_string(dur.last.bytes),
                   common::TablePrinter::Fmt(dur.restore_wall_ms, 3),
                   common::TablePrinter::Fmt(dur.first_ok_ms, 3),
                   std::to_string(dur.probes_before_ok)});
    dtable.Print();
    std::printf("restore recovered %zu users / %zu patterns; %llu requests "
                "served frozen during the warm start\n",
                dur.restored.users, dur.restored.patterns,
                static_cast<unsigned long long>(dur.warm_start_fallbacks));
    if (report) {
      WriteDurabilityJson("BENCH_serving_durability.json", dur);
    }
  }
  return 0;
}
