// Serving load test: replays the synthetic test split's check-ins against
// serve::PredictionService with a closed-loop load generator and reports
// throughput plus per-stage tail latency. The scaling claim under test:
// micro-batched workers over the mutex-striped SessionStore give near-linear
// QPS in worker count, because encoder forwards are read-only and PTTA state
// is sharded per user.
//
// Extra knobs (on top of the shared ADAMOVE_BENCH_* ones):
//   ADAMOVE_BENCH_SERVE_REQUESTS — replayed requests per run (default 2000)
//   ADAMOVE_BENCH_SERVE_CLIENTS  — closed-loop client threads (default 8)
//   ADAMOVE_BENCH_SERVE_QPS      — offered QPS, 0 = max speed (default 0)
//   ADAMOVE_BENCH_SERVE_CAP      — SessionStore resident-user cap (default 0)

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/table_printer.h"
#include "core/lightmob.h"
#include "serve/load_gen.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"

using namespace adamove;

namespace {

struct RunReport {
  double qps = 0;
  serve::LoadGenResult load;
  serve::ServiceStats stats;
  size_t resident_users = 0;
  uint64_t evictions = 0;
};

RunReport RunOnce(core::AdaptableModel& model,
                  const std::vector<data::Sample>& stream, int workers,
                  int max_batch, const serve::LoadGenConfig& lg,
                  size_t resident_cap) {
  serve::SessionStoreConfig sc;
  sc.max_resident_users = resident_cap;
  serve::SessionStore store(sc);
  serve::ServiceConfig svc;
  svc.workers = workers;
  svc.max_batch = max_batch;
  serve::PredictionService service(model, store, svc);
  RunReport report;
  report.load = serve::RunLoadGen(service, stream, lg);
  service.Shutdown();
  report.stats = service.Stats();
  report.qps = report.load.qps;
  report.resident_users = store.UserCount();
  report.evictions = store.EvictionCount();
  return report;
}

std::string Ms(const common::LatencyHistogram& h, double q) {
  return common::TablePrinter::Fmt(h.QuantileUs(q) / 1000.0, 3);
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("bench_serving — concurrent online prediction",
                          env);

  bench::PreparedDataset prepared =
      bench::Prepare(data::NycLikePreset(), env);
  core::ModelConfig mc = bench::MakeModelConfig(prepared, env);
  core::LightMob model(mc);
  core::TrainConfig tc = bench::MakeTrainConfig(env);
  // Latency, not accuracy, is under test — a short warm-up train suffices.
  tc.max_epochs = std::min(tc.max_epochs, 3);
  bench::TrainModel(model, prepared.dataset, tc);

  const size_t requests = static_cast<size_t>(
      common::EnvInt("ADAMOVE_BENCH_SERVE_REQUESTS", 2000));
  std::vector<data::Sample> stream =
      serve::BuildReplayStream(prepared.dataset.test, requests);

  serve::LoadGenConfig lg;
  // Offered concurrency must exceed max_batch by the worker count,
  // otherwise the whole closed-loop load fits into one worker's batch and
  // extra workers starve (clients block on their single in-flight request).
  lg.clients = common::EnvInt("ADAMOVE_BENCH_SERVE_CLIENTS", 32);
  lg.target_qps = common::EnvDouble("ADAMOVE_BENCH_SERVE_QPS", 0.0);
  lg.max_requests = requests;
  const size_t cap =
      static_cast<size_t>(common::EnvInt("ADAMOVE_BENCH_SERVE_CAP", 0));

  std::printf("replay: %zu requests, %d closed-loop clients, offered "
              "qps %s\n\n",
              requests, lg.clients,
              lg.target_qps > 0 ? std::to_string(lg.target_qps).c_str()
                                : "max");

  common::TablePrinter table(
      {"workers", "batch", "qps", "e2e p50 ms", "e2e p95 ms", "e2e p99 ms",
       "queue p95 ms", "encode p95 ms", "adapt p95 ms", "mean batch",
       "resident", "evicted", "degraded"});
  struct Config {
    int workers;
    int max_batch;
  };
  const Config configs[] = {{1, 1}, {1, 8}, {2, 8}, {4, 8}};
  double single_qps = 0, quad_qps = 0;
  for (const Config& c : configs) {
    RunReport r =
        RunOnce(model, stream, c.workers, c.max_batch, lg, cap);
    if (c.workers == 1 && c.max_batch == 8) single_qps = r.qps;
    if (c.workers == 4) quad_qps = r.qps;
    table.AddRow({std::to_string(c.workers), std::to_string(c.max_batch),
                  common::TablePrinter::Fmt(r.qps, 1),
                  Ms(r.load.e2e_us, 0.50), Ms(r.load.e2e_us, 0.95),
                  Ms(r.load.e2e_us, 0.99), Ms(r.stats.queue_us, 0.95),
                  Ms(r.stats.encode_us, 0.95), Ms(r.stats.adapt_us, 0.95),
                  common::TablePrinter::Fmt(r.stats.MeanBatchSize(), 2),
                  std::to_string(r.resident_users),
                  std::to_string(r.evictions),
                  std::to_string(r.stats.degraded_requests +
                                 r.stats.timeouts)});
  }
  table.Print();
  if (single_qps > 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("\n4-worker speedup over single worker: %.2fx "
                "(target: >= 2x; %u core%s visible)\n",
                quad_qps / single_qps, cores, cores == 1 ? "" : "s");
    if (cores < 4) {
      std::printf("note: the encode stage is CPU-bound, so the >= 2x "
                  "target needs >= 4 cores — on this host extra workers "
                  "can only timeslice.\n");
    }
  }
  return 0;
}
