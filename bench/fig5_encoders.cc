// Reproduces Fig. 5: impact of the trajectory encoder family (RNN, LSTM,
// GRU, Transformer) on AdaMove. Paper shape: recurrent encoders beat the
// Transformer on these sparse trajectories; GRU is the best overall.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/adamove.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 5: Ablation on Different Trajectory Encoders",
                          env);
  common::TablePrinter table(
      {"Dataset", "Encoder", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::TrainConfig train_config = bench::MakeTrainConfig(env);
    for (core::EncoderType type :
         {core::EncoderType::kRnn, core::EncoderType::kLstm,
          core::EncoderType::kGru, core::EncoderType::kTransformer}) {
      core::ModelConfig config = bench::MakeModelConfig(prepared, env);
      config.encoder = type;  // Transformer: 2 layers, 8 heads (§IV-C)
      core::AdaMove model(config);
      model.Train(prepared.dataset, train_config);
      core::EvalResult result = model.EvaluateTta(prepared.dataset.test);
      std::vector<std::string> row{preset.name,
                                   core::EncoderTypeName(type)};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig5] %s/%s rec@1=%.4f\n", preset.name.c_str(),
                   core::EncoderTypeName(type).c_str(), result.metrics.rec1);
    }
  }
  table.Print();
  std::printf("\nPaper shape: GRU best, Transformer worst (sparse "
              "trajectories underuse attention capacity).\n");
  return 0;
}
