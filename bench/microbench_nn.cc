// google-benchmark microbenchmarks of the nn substrate: the primitives whose
// cost dominates training (matmul, LSTM step, attention) and the
// forward/backward tape overhead.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"
#include "nn/rnn.h"

namespace {

using namespace adamove;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  common::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_LstmForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::Rng rng(2);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_LstmForward)->Arg(8)->Arg(32)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::Rng rng(3);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  for (auto _ : state) {
    enc.ZeroGrad();
    nn::Tensor h = enc.Forward(x, true);
    nn::Sum(nn::Mul(h, h)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_LstmForwardBackward)->Arg(8)->Arg(32);

void BM_TransformerForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::Rng rng(4);
  nn::TransformerSeqEncoder enc(72, 64, 2, 8, 0.1f, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_TransformerForward)->Arg(8)->Arg(32);

void BM_EmbeddingLookup(benchmark::State& state) {
  common::Rng rng(5);
  nn::Tensor w = nn::Tensor::Randn({5000, 48}, rng);
  std::vector<int64_t> idx(64);
  for (size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<int64_t>(rng.UniformInt(0, 4999));
  }
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::EmbeddingLookup(w, idx).data().data());
  }
}
BENCHMARK(BM_EmbeddingLookup);

void BM_TapeOverhead(benchmark::State& state) {
  // Compares tape-on forward cost vs NoGrad (see BM_LstmForward): the gap
  // is the autograd bookkeeping price the NoGradGuard avoids at inference.
  common::Rng rng(6);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({32, 72}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
}
BENCHMARK(BM_TapeOverhead);

}  // namespace

BENCHMARK_MAIN();
