// google-benchmark microbenchmarks of the nn substrate: the primitives whose
// cost dominates training (matmul, LSTM step, attention), the
// forward/backward tape overhead, and the parallel-kernel thread sweeps.
//
// Thread-sweep benchmarks take Args({size, threads}) pairs and pin the
// shared kernel pool via common::SetKernelThreads; results are bit-identical
// across thread counts (see tests/nn/kernels_test.cc), so the sweep measures
// pure scheduling gain. Run with --bench_report to also write
// BENCH_kernels.json (google-benchmark JSON) next to the binary.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/alloc_probe.h"
#include "common/cpu_features.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "nn/kernels.h"
#include "core/config.h"
#include "core/lightmob.h"
#include "core/ptta.h"
#include "data/point.h"
#include "nn/attention.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"
#include "nn/rnn.h"

namespace {

using namespace adamove;

// Pins the kernel backend for one benchmark run (third Args dimension:
// 0 = scalar reference, 1 = simd), so the JSON keeps scalar baseline rows
// next to the vector rows. Falls back to scalar when the host has no
// vector kernels; the run is then a duplicate baseline, not a crash.
class BackendPin {
 public:
  explicit BackendPin(int64_t backend_arg) {
    nn::kernels::SetBackendForTest(backend_arg != 0
                                       ? nn::kernels::Backend::kSimd
                                       : nn::kernels::Backend::kScalar);
  }
  // Back to the flag/env-selected backend for un-pinned benchmarks.
  ~BackendPin() { nn::kernels::RefreshBackendFromEnv(); }
};

// Adds the `allocs/op` column: heap allocations per iteration over the
// timed loop, from the common/alloc_probe interposition. The graph-mode
// rows here are the baseline the static-plan rows in bench_plan drive to
// zero (DESIGN.md §14). Omitted under sanitizer builds (probe unavailable).
void ReportAllocsPerOp(benchmark::State& state,
                       const common::AllocProbeScope& window) {
  if (!common::AllocProbeAvailable()) return;
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(window.allocations()),
      benchmark::Counter::kAvgIterations);
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  common::SetKernelThreads(static_cast<int>(state.range(1)));
  BackendPin pin(state.range(2));
  common::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng);
  nn::NoGradGuard no_grad;
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b).data().data());
  }
  ReportAllocsPerOp(state, allocs);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  common::SetKernelThreads(0);
}
BENCHMARK(BM_MatMul)
    // Scalar baseline rows (backend arg 0), one per size at 1 thread.
    ->Args({32, 1, 0})
    ->Args({64, 1, 0})
    ->Args({128, 1, 0})
    ->Args({256, 1, 0})
    // The simd size × threads sweep.
    ->Args({32, 1, 1})
    ->Args({64, 1, 1})
    ->Args({128, 1, 1})
    ->Args({128, 2, 1})
    ->Args({128, 4, 1})
    ->Args({256, 1, 1})
    ->Args({256, 2, 1})
    ->Args({256, 4, 1})
    ->Args({256, 8, 1});

void BM_MatMulBackward(benchmark::State& state) {
  // Exercises the transpose-variant kernels (dA += dC·Bᵀ, dB += Aᵀ·dC).
  const int64_t n = state.range(0);
  common::SetKernelThreads(static_cast<int>(state.range(1)));
  common::Rng rng(2);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng, 1.0f, /*requires_grad=*/true);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng, 1.0f, /*requires_grad=*/true);
  for (auto _ : state) {
    nn::Sum(nn::MatMul(a, b)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n * n);
  common::SetKernelThreads(0);
}
BENCHMARK(BM_MatMulBackward)->Args({128, 1})->Args({128, 2})->Args({128, 4});

void BM_LstmForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::Rng rng(2);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  nn::NoGradGuard no_grad;
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
  ReportAllocsPerOp(state, allocs);
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_LstmForward)->Arg(8)->Arg(32)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::Rng rng(3);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  for (auto _ : state) {
    enc.ZeroGrad();
    nn::Tensor h = enc.Forward(x, true);
    nn::Sum(nn::Mul(h, h)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_LstmForwardBackward)->Arg(8)->Arg(32);

void BM_TransformerForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  common::SetKernelThreads(static_cast<int>(state.range(1)));
  common::Rng rng(4);
  nn::TransformerSeqEncoder enc(72, 64, 2, 8, 0.1f, rng);
  nn::Tensor x = nn::Tensor::Randn({t, 72}, rng);
  nn::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
  state.SetItemsProcessed(state.iterations() * t);
  common::SetKernelThreads(0);
}
BENCHMARK(BM_TransformerForward)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4});

void BM_EmbeddingLookup(benchmark::State& state) {
  common::Rng rng(5);
  nn::Tensor w = nn::Tensor::Randn({5000, 48}, rng);
  std::vector<int64_t> idx(64);
  for (size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<int64_t>(rng.UniformInt(0, 4999));
  }
  nn::NoGradGuard no_grad;
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::EmbeddingLookup(w, idx).data().data());
  }
  ReportAllocsPerOp(state, allocs);
}
BENCHMARK(BM_EmbeddingLookup);

void BM_TapeOverhead(benchmark::State& state) {
  // Compares tape-on forward cost vs NoGrad (see BM_LstmForward): the gap
  // is the autograd bookkeeping price the NoGradGuard avoids at inference.
  common::Rng rng(6);
  nn::LstmEncoder enc(72, 64, rng);
  nn::Tensor x = nn::Tensor::Randn({32, 72}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Forward(x, false).data().data());
  }
}
BENCHMARK(BM_TapeOverhead);

// PTTA adjusted-weights hot path under the thread sweep: pattern importance
// and pseudo-label scoring parallelize over prefixes and columns.
void BM_PttaAdjustedWeights(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  common::SetKernelThreads(static_cast<int>(state.range(1)));
  BackendPin pin(state.range(2));
  core::ModelConfig config;
  config.num_locations = 500;
  config.num_users = 50;
  config.lambda = 0.0;
  core::LightMob model(config);
  common::Rng rng(7);
  data::Sample sample;
  sample.user = 3;
  int64_t t = 1333238400;
  for (int i = 0; i < length; ++i) {
    sample.recent.push_back(
        {sample.user, rng.UniformInt(0, config.num_locations - 1), t});
    t += 2 * data::kSecondsPerHour;
  }
  sample.target = {sample.user, rng.UniformInt(0, config.num_locations - 1),
                   t};
  nn::Tensor reps = model.PrefixRepresentations(sample);
  std::vector<int64_t> labels;
  for (int i = 0; i + 1 < length; ++i) {
    labels.push_back(sample.recent[static_cast<size_t>(i) + 1].location);
  }
  // Entropy importance scores every prefix against all L columns — the
  // kernel-bound configuration.
  core::PttaConfig ptta;
  ptta.similarity_importance = false;
  core::TestTimeAdapter adapter{ptta};
  common::AllocProbeScope allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adapter.AdjustedWeights(reps, labels, model.classifier()).data());
  }
  ReportAllocsPerOp(state, allocs);
  state.SetItemsProcessed(state.iterations() * length);
  common::SetKernelThreads(0);
}
BENCHMARK(BM_PttaAdjustedWeights)
    // Scalar baseline rows, then the simd length × threads sweep.
    ->Args({32, 1, 0})
    ->Args({64, 1, 0})
    ->Args({32, 1, 1})
    ->Args({32, 2, 1})
    ->Args({32, 4, 1})
    ->Args({64, 1, 1})
    ->Args({64, 2, 1})
    ->Args({64, 4, 1});

}  // namespace

// Custom main: `--bench_report` additionally writes BENCH_kernels.json
// (google-benchmark's JSON format) for the perf-tracking scripts, without
// the caller having to remember the two underlying flags; `--backend=
// scalar|simd` forces the kernel dispatch table for the un-pinned
// benchmarks, and the selection lands in the JSON `context` block so a
// checked-in baseline always names the arithmetic that produced it.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool report = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--bench_report") == 0) {
      report = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (report) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  const std::string backend = adamove::bench::ApplyKernelBackendFlag(&args);
  benchmark::AddCustomContext("kernel_backend", backend);
  benchmark::AddCustomContext("cpu_features",
                              adamove::common::CpuFeatureString());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
