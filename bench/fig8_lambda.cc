// Reproduces Fig. 8: impact of the contrastive trade-off λ in LightMob's
// hybrid loss (Eq. 11). Paper shape: accuracy improves with λ up to a
// dataset-dependent optimum, then declines (over-weighting historical
// patterns under shift).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/adamove.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 8: Impact of the Parameter lambda", env);
  common::TablePrinter table(
      {"Dataset", "lambda", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    for (double lambda : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
      core::ModelConfig config = bench::MakeModelConfig(prepared, env);
      config.lambda = lambda;
      core::AdaMove model(config);
      model.Train(prepared.dataset, bench::MakeTrainConfig(env));
      core::EvalResult result = model.EvaluateTta(prepared.dataset.test);
      std::vector<std::string> row{preset.name,
                                   common::TablePrinter::Fmt(lambda, 2)};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[fig8] %s/lambda=%.1f rec@1=%.4f\n",
                   preset.name.c_str(), lambda, result.metrics.rec1);
    }
  }
  table.Print();
  std::printf("\nPaper shape: inverted-U with a dataset-dependent optimum "
              "(0.8 / 0.2 / 0.6 at full scale); larger shifts favour "
              "smaller lambda. At this reduced scale the optimum sits near "
              "0.1-0.2 (see EXPERIMENTS.md).\n");
  return 0;
}
