// Reproduces Table III: average per-sample inference+adaptation time of
// DeepTTA (DeepMove + PTTA, history encoded explicitly at test time) vs.
// AdaMove (LightMob + PTTA, history knowledge distilled at train time).
// The paper reports 30.4% / 10.1% / 45.2% improvements (28.5% average);
// the shape to reproduce is AdaMove faster on all three datasets, with the
// largest gain on the dense LYMOB.

#include <cstdio>

#include "bench/bench_common.h"
#include "baselines/deepmove.h"
#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/evaluator.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner(
      "Table III: Computational Costs on Different Datasets", env);

  common::TablePrinter table({"Dataset", "DeepTTA (ms)", "AdaMove (ms)",
                              "Improve", "Paper"});
  const char* paper_improve[3] = {"30.4%", "10.1%", "45.2%"};
  int idx = 0;
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::ModelConfig model_config =
        bench::MakeModelConfig(prepared, env);
    // A short training budget is enough: Table III measures latency, not
    // accuracy, and both systems run the same trained-weight shapes.
    core::TrainConfig train_config = bench::MakeTrainConfig(env);
    train_config.max_epochs = std::min(train_config.max_epochs, 3);

    baselines::DeepMove deeptta(model_config, "DeepTTA");
    bench::TrainModel(deeptta, prepared.dataset, train_config);
    core::TestTimeAdapter adapter{core::PttaConfig{}};
    core::EvalResult deeptta_result = core::EvaluateWithAdapter(
        deeptta, prepared.dataset.test, adapter);

    core::AdaMove adamove(model_config);
    adamove.Train(prepared.dataset, train_config);
    core::EvalResult adamove_result =
        adamove.EvaluateTta(prepared.dataset.test);

    const double improve =
        deeptta_result.avg_ms_per_sample > 0
            ? 100.0 *
                  (deeptta_result.avg_ms_per_sample -
                   adamove_result.avg_ms_per_sample) /
                  deeptta_result.avg_ms_per_sample
            : 0.0;
    table.AddRow({preset.name,
                  common::TablePrinter::Fmt(
                      deeptta_result.avg_ms_per_sample, 2),
                  common::TablePrinter::Fmt(
                      adamove_result.avg_ms_per_sample, 2),
                  common::TablePrinter::Fmt(improve, 1) + "%",
                  paper_improve[idx]});
    ++idx;
  }
  table.Print();
  std::printf("\nPaper: 17.1->11.9ms (NYC), 35.5->31.9ms (TKY), "
              "35.6->19.5ms (LYMOB); AdaMove faster everywhere, most on the "
              "dense LYMOB whose histories cost DeepTTA the most to encode."
              "\n");
  return 0;
}
