// Reproduces Table I: data statistics after pre-processing, for the three
// synthetic dataset presets standing in for NYC / TKY / LYMOB.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "data/stats.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Table I: Data Statistics after Pre-processing",
                          env);
  common::TablePrinter table({"Dataset", "Days", "#Users", "#Loc.", "#Traj.",
                              "#Points", "Avg.Traj.Len"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    data::DatasetStats stats = data::ComputeStats(prepared.preprocessed);
    table.AddRow({preset.name, std::to_string(stats.time_span_days),
                  std::to_string(stats.num_users),
                  std::to_string(stats.num_locations),
                  std::to_string(stats.num_sessions),
                  std::to_string(stats.num_points),
                  common::TablePrinter::Fmt(stats.avg_session_length, 2)});
  }
  table.Print();
  std::printf(
      "\nPaper (full-scale): NYC 637u/4713l/50720t, TKY 1843u/7736l/314202t,\n"
      "LYMOB 500u/5906l/467899t. This repo simulates reduced-scale analogues\n"
      "(see DESIGN.md section 2); relative shapes (TKY largest, LYMOB densest\n"
      "and shortest-span) are preserved.\n");
  return 0;
}
