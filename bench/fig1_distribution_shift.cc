// Reproduces Fig. 1(b)(c): the temporal distribution shift evidence.
// (b) one user's location-visit heatmap over biweekly windows;
// (c) cosine similarity of the biweekly mobility distribution to the
//     historical (first-90-day) distribution, decaying over time.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "data/stats.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner("Fig. 1: Temporal Shifts in Human Mobility Data",
                          env);
  bench::PreparedDataset prepared =
      bench::Prepare(data::NycLikePreset(), env);

  // Fig. 1(b): heatmap of the user with the most sessions.
  size_t best_user = 0;
  for (size_t u = 0; u < prepared.preprocessed.users.size(); ++u) {
    if (prepared.preprocessed.users[u].sessions.size() >
        prepared.preprocessed.users[best_user].sessions.size()) {
      best_user = u;
    }
  }
  data::VisitHeatmap hm = data::ComputeVisitHeatmap(
      prepared.preprocessed, static_cast<int64_t>(best_user), 14);
  std::printf("Fig. 1(b): visit heatmap of user %zu "
              "(rows=locations, cols=biweekly windows, '#' scaled count)\n",
              best_user);
  const size_t max_rows = std::min<size_t>(hm.locations.size(), 18);
  for (size_t r = 0; r < max_rows; ++r) {
    std::printf("  loc %4lld |", static_cast<long long>(hm.locations[r]));
    for (int c : hm.counts[r]) {
      const char* cell = c == 0 ? " " : (c < 3 ? "." : (c < 8 ? "+" : "#"));
      std::printf("%s", cell);
    }
    std::printf("|\n");
  }
  if (hm.locations.size() > max_rows) {
    std::printf("  ... (%zu more locations)\n",
                hm.locations.size() - max_rows);
  }

  // Fig. 1(c): similarity decay.
  auto series =
      data::MobilitySimilaritySeries(prepared.preprocessed, 90, 14);
  std::printf("\nFig. 1(c): mobility similarity vs. historical "
              "distribution (per biweekly window)\n");
  common::TablePrinter table({"Window (wk)", "Similarity", "Bar"});
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i] < 0) continue;
    std::string bar(static_cast<size_t>(series[i] * 40), '#');
    table.AddRow({std::to_string((i + 1) * 2),
                  common::TablePrinter::Fmt(series[i]), bar});
  }
  table.Print();
  if (series.size() >= 4) {
    const double early = series.front();
    const double late = series.back();
    std::printf("\nShape check (paper: similarity decays over time, below "
                "0.5 by week 12): first window %.3f -> last window %.3f "
                "(%s)\n",
                early, late, late < early ? "DECAYS as in paper" :
                "no decay — unexpected");
  }
  return 0;
}
