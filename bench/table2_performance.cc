// Reproduces Table II: Rec@1/5/10 and MRR of the nine baselines and AdaMove
// on the three datasets. Absolute numbers differ from the paper (synthetic
// reduced-scale data, CPU training budget); the comparison that must hold is
// AdaMove > best baseline, with the smallest margin on LYMOB (small shift).

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "common/table_printer.h"
#include "core/adamove.h"

int main() {
  using namespace adamove;
  bench::BenchEnv env = bench::ReadBenchEnv();
  bench::PrintBenchBanner(
      "Table II: Model Performance on Different Datasets", env);

  common::TablePrinter table(
      {"Dataset", "Method", "Rec@1", "Rec@5", "Rec@10", "MRR"});
  for (const auto& preset : data::AllPresets()) {
    bench::PreparedDataset prepared = bench::Prepare(preset, env);
    const core::ModelConfig model_config =
        bench::MakeModelConfig(prepared, env);
    const core::TrainConfig train_config = bench::MakeTrainConfig(env);
    std::fprintf(stderr, "[table2] %s: %lld users, %lld locations, "
                 "%zu train / %zu test samples\n",
                 preset.name.c_str(),
                 static_cast<long long>(prepared.dataset.num_users),
                 static_cast<long long>(prepared.dataset.num_locations),
                 prepared.dataset.train.size(),
                 prepared.dataset.test.size());

    double best_baseline_rec1 = 0.0;
    for (const std::string& name : baselines::PaperBaselineNames()) {
      auto model = baselines::MakeModel(name, model_config);
      bench::TrainModel(*model, prepared.dataset, train_config);
      core::EvalResult result =
          core::Evaluate(*model, prepared.dataset.test);
      best_baseline_rec1 = std::max(best_baseline_rec1, result.metrics.rec1);
      std::vector<std::string> row{preset.name, name};
      for (auto& cell : bench::MetricCells(result.metrics)) {
        row.push_back(cell);
      }
      table.AddRow(row);
      std::fprintf(stderr, "[table2] %s/%s rec@1=%.4f\n",
                   preset.name.c_str(), name.c_str(), result.metrics.rec1);
    }

    core::AdaMove adamove(model_config);
    adamove.Train(prepared.dataset, train_config);
    core::EvalResult result = adamove.EvaluateTta(prepared.dataset.test);
    std::vector<std::string> row{preset.name, "AdaMove (Ours)"};
    for (auto& cell : bench::MetricCells(result.metrics)) row.push_back(cell);
    table.AddRow(row);
    std::fprintf(stderr,
                 "[table2] %s/AdaMove rec@1=%.4f (best baseline %.4f, "
                 "improvement %+.1f%%)\n",
                 preset.name.c_str(), result.metrics.rec1,
                 best_baseline_rec1,
                 best_baseline_rec1 > 0
                     ? 100.0 * (result.metrics.rec1 - best_baseline_rec1) /
                           best_baseline_rec1
                     : 0.0);
  }
  table.Print();
  std::printf("\nPaper's headline: AdaMove beats the best baseline by 9.3%% "
              "on average in Rec@1 across the three datasets.\n");
  return 0;
}
