// google-benchmark ablations of PTTA itself:
//  * adaptation latency vs recent-trajectory length — the paper's O(N_u)
//    complexity claim (§III-B);
//  * linear-scan vs priority-queue knowledge-base maintenance — the paper
//    suggests a priority queue gives O(log M) updates; both variants are
//    implemented and produce identical contents (see ptta_test.cc).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/lightmob.h"
#include "core/ptta.h"
#include "data/point.h"

namespace {

using namespace adamove;

core::ModelConfig BenchConfig() {
  core::ModelConfig c;
  c.num_locations = 500;
  c.num_users = 50;
  c.lambda = 0.0;
  return c;
}

data::Sample MakeSample(int length, int num_locations, common::Rng& rng) {
  data::Sample s;
  s.user = 3;
  int64_t t = 1333238400;
  for (int i = 0; i < length; ++i) {
    s.recent.push_back(
        {s.user, rng.UniformInt(0, num_locations - 1), t});
    t += 2 * data::kSecondsPerHour;
  }
  s.target = {s.user, rng.UniformInt(0, num_locations - 1), t};
  return s;
}

void BM_PttaAdaptPredict(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  core::LightMob model(BenchConfig());
  common::Rng rng(7);
  data::Sample sample = MakeSample(length, 500, rng);
  // Second arg selects the knowledge-base structure end to end — the
  // use_heap plumbing from PttaConfig through TopMBuffer.
  core::PttaConfig config;
  config.use_heap = state.range(1) != 0;
  core::TestTimeAdapter adapter{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapter.Predict(model, sample).data());
  }
  state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_PttaAdaptPredict)
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({32, 0})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_PttaWeightUpdateOnly(benchmark::State& state) {
  // Steps 2-3 in isolation (no encoder): the pure knowledge-base cost.
  const int length = static_cast<int>(state.range(0));
  core::LightMob model(BenchConfig());
  common::Rng rng(8);
  data::Sample sample = MakeSample(length, 500, rng);
  nn::Tensor reps = model.PrefixRepresentations(sample);
  std::vector<int64_t> labels;
  for (int i = 0; i + 1 < length; ++i) {
    labels.push_back(sample.recent[static_cast<size_t>(i) + 1].location);
  }
  core::TestTimeAdapter adapter{core::PttaConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adapter.AdjustedWeights(reps, labels, model.classifier()).data());
  }
}
BENCHMARK(BM_PttaWeightUpdateOnly)->Arg(8)->Arg(32)->Arg(64);

void BM_TopMBuffer(benchmark::State& state) {
  const bool use_heap = state.range(0) != 0;
  const int capacity = static_cast<int>(state.range(1));
  common::Rng rng(9);
  std::vector<float> importances(1024);
  for (auto& v : importances) {
    v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    core::TopMBuffer buf(capacity, use_heap);
    for (size_t i = 0; i < importances.size(); ++i) {
      buf.Offer(importances[i], static_cast<int>(i));
    }
    benchmark::DoNotOptimize(buf.Ids().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(importances.size()));
}
BENCHMARK(BM_TopMBuffer)
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 64})
    ->Args({1, 64});

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--backend=scalar|simd` forces
// the kernel dispatch table, and the active selection + CPU features are
// recorded in the context block of any JSON the caller requests via the
// standard --benchmark_out flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  const std::string backend = adamove::bench::ApplyKernelBackendFlag(&args);
  benchmark::AddCustomContext("kernel_backend", backend);
  benchmark::AddCustomContext("cpu_features",
                              adamove::common::CpuFeatureString());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
