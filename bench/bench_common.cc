#include "bench/bench_common.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/preprocess.h"
#include "nn/kernels.h"

namespace adamove::bench {

BenchEnv ReadBenchEnv() {
  BenchEnv env;
  env.scale = common::EnvDouble("ADAMOVE_BENCH_SCALE", 0.4);
  env.max_epochs = common::EnvInt("ADAMOVE_BENCH_EPOCHS", 8);
  env.hidden = common::EnvInt("ADAMOVE_BENCH_HIDDEN", 64);
  env.train_cap = common::EnvInt("ADAMOVE_BENCH_TRAIN_CAP", 2500);
  env.eval_cap = common::EnvInt("ADAMOVE_BENCH_EVAL_CAP", 800);
  return env;
}

namespace {

// Deterministic stride subsample preserving chronological spread.
void StrideSubsample(std::vector<data::Sample>& samples, int cap) {
  if (cap <= 0 || static_cast<int>(samples.size()) <= cap) return;
  std::vector<data::Sample> kept;
  kept.reserve(static_cast<size_t>(cap));
  const double stride =
      static_cast<double>(samples.size()) / static_cast<double>(cap);
  for (int i = 0; i < cap; ++i) {
    kept.push_back(samples[static_cast<size_t>(i * stride)]);
  }
  samples = std::move(kept);
}

}  // namespace

PreparedDataset Prepare(data::DatasetPreset preset, const BenchEnv& env) {
  PreparedDataset out;
  data::ScalePreset(preset, env.scale);
  out.preset = preset;
  out.world = data::GenerateSynthetic(preset.synthetic);
  out.preprocessed = data::Preprocess(out.world.trajectories,
                                      preset.preprocess);
  data::SplitConfig split;
  split.eval_samples.context_sessions = preset.eval_context_sessions;
  out.dataset = data::MakeDataset(out.preprocessed, split);
  StrideSubsample(out.dataset.val, env.eval_cap);
  StrideSubsample(out.dataset.test, env.eval_cap);
  return out;
}

core::ModelConfig MakeModelConfig(const PreparedDataset& prepared,
                                  const BenchEnv& env) {
  core::ModelConfig config;
  config.num_locations = prepared.dataset.num_locations;
  config.num_users = prepared.dataset.num_users;
  config.hidden_size = env.hidden;
  config.lambda = prepared.preset.lambda;
  return config;
}

core::TrainConfig MakeTrainConfig(const BenchEnv& env) {
  core::TrainConfig config;
  config.max_epochs = env.max_epochs;
  config.max_train_samples_per_epoch = env.train_cap;
  return config;
}

void TrainModel(core::MobilityModel& model, const data::Dataset& dataset,
                const core::TrainConfig& config) {
  model.Fit(dataset);
  if (model.trainable()) {
    core::Trainer trainer(config);
    trainer.Train(model, dataset);
  }
}

std::vector<std::string> MetricCells(const core::Metrics& metrics) {
  using common::TablePrinter;
  return {TablePrinter::Fmt(metrics.rec1), TablePrinter::Fmt(metrics.rec5),
          TablePrinter::Fmt(metrics.rec10), TablePrinter::Fmt(metrics.mrr)};
}

void PrintBenchBanner(const std::string& bench_name, const BenchEnv& env) {
  std::printf("=== %s ===\n", bench_name.c_str());
  std::printf(
      "env: scale=%.2f epochs=%d hidden=%d "
      "(override via ADAMOVE_BENCH_SCALE / _EPOCHS / _HIDDEN)\n\n",
      env.scale, env.max_epochs, env.hidden);
}

std::string ApplyKernelBackendFlag(std::vector<char*>* args) {
  for (auto it = args->begin(); it != args->end(); ++it) {
    if (std::strncmp(*it, "--backend=", 10) != 0) continue;
    const char* value = *it + 10;
    if (std::strcmp(value, "scalar") != 0 && std::strcmp(value, "simd") != 0) {
      std::fprintf(stderr,
                   "--backend=%s: expected scalar or simd; keeping the "
                   "default selection\n",
                   value);
    } else {
      setenv("ADAMOVE_KERNEL_BACKEND", value, /*overwrite=*/1);
    }
    args->erase(it);
    break;
  }
  nn::kernels::RefreshBackendFromEnv();
  return nn::kernels::BackendDescription();
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t CurrentRssBytes() {
  // statm field 2 is resident pages; multiply by the page size. Bench-only
  // diagnostics, so a parse failure degrades to 0 instead of erroring.
  std::FILE* f = std::fopen("/proc/self/statm", "r");  // NOLINT(durable-io)
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0, resident_pages = 0;
  const int matched =
      std::fscanf(f, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<uint64_t>(resident_pages) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace adamove::bench
