// Streaming adaptation: the §III-B deployment scenario. Check-ins of one
// user arrive as a stream; a sliding window over the last c sessions forms
// the recent trajectory, and every prediction adapts the classifier from
// that window alone (the model itself is never retrained). This is the
// "real-time application" use of PTTA mentioned in the paper.
//
// Build: cmake --build build --target streaming_adaptation

#include <cstdio>
#include <deque>

#include "core/adamove.h"
#include "core/metrics.h"
#include "core/online_adapter.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace adamove;

namespace {

/// Maintains the sliding recent-trajectory window: points of the last
/// `context_sessions` sessions (session = 72 h from its first point).
class SlidingWindow {
 public:
  explicit SlidingWindow(int context_sessions)
      : context_sessions_(context_sessions) {}

  void Push(const data::Point& p) {
    if (sessions_.empty() ||
        p.timestamp - sessions_.back().front().timestamp >
            72 * data::kSecondsPerHour) {
      sessions_.push_back({});
      while (static_cast<int>(sessions_.size()) > context_sessions_) {
        sessions_.pop_front();
      }
    }
    sessions_.back().push_back(p);
  }

  std::vector<data::Point> Window() const {
    std::vector<data::Point> out;
    for (const auto& s : sessions_) out.insert(out.end(), s.begin(), s.end());
    return out;
  }

 private:
  int context_sessions_;
  std::deque<std::vector<data::Point>> sessions_;
};

}  // namespace

int main() {
  // World + trained model (identical setup to quickstart, abridged).
  data::DatasetPreset preset = data::NycLikePreset();
  data::ScalePreset(preset, 0.4);
  data::SyntheticResult world = data::GenerateSynthetic(preset.synthetic);
  data::PreprocessedData pre =
      data::Preprocess(world.trajectories, preset.preprocess);
  data::SplitConfig split;
  data::Dataset dataset = data::MakeDataset(pre, split);

  core::ModelConfig config;
  config.num_locations = dataset.num_locations;
  config.num_users = dataset.num_users;
  config.lambda = preset.lambda;
  core::AdaMove model(config);
  core::TrainConfig tc;
  tc.max_epochs = 5;
  tc.max_train_samples_per_epoch = 2500;  // keep the demo snappy
  model.Train(dataset, tc);

  // Stream the *test-period* check-ins of the busiest user and predict
  // each next location online.
  size_t user = 0;
  for (size_t u = 0; u < pre.users.size(); ++u) {
    if (pre.users[u].sessions.size() > pre.users[user].sessions.size()) {
      user = u;
    }
  }
  const auto& sessions = pre.users[user].sessions;
  const size_t test_begin = sessions.size() * 8 / 10;
  SlidingWindow window(preset.eval_context_sessions);
  // Warm the window with the last pre-test sessions.
  for (size_t s = test_begin > 4 ? test_begin - 4 : 0; s < test_begin; ++s) {
    for (const auto& p : sessions[s]) window.Push(p);
  }

  std::printf("Streaming test-period check-ins of user %zu...\n\n", user);
  core::MetricAccumulator frozen_acc, adapted_acc, online_acc;
  // The OnlineAdapter keeps a persistent per-user knowledge base instead
  // of rebuilding it per query — O(1) ingestion per check-in.
  core::OnlineAdapter online{core::PttaConfig{}};
  int step = 0;
  for (size_t s = test_begin; s < sessions.size(); ++s) {
    for (const auto& p : sessions[s]) {
      data::Sample sample;
      sample.user = static_cast<int64_t>(user);
      sample.recent = window.Window();
      sample.target = p;
      if (!sample.recent.empty()) {
        const auto adapted = model.Predict(sample);
        const auto frozen = model.model().Scores(sample);
        const auto streamed = online.ObserveAndPredict(model.model(), sample);
        adapted_acc.Add(adapted, p.location);
        frozen_acc.Add(frozen, p.location);
        online_acc.Add(streamed, p.location);
        if (step < 8) {
          std::printf("t+%02d  truth %3lld | adapted rank %2lld | online "
                      "rank %2lld | frozen rank %2lld\n",
                      step, static_cast<long long>(p.location),
                      static_cast<long long>(
                          core::MetricAccumulator::RankOf(adapted,
                                                          p.location)),
                      static_cast<long long>(
                          core::MetricAccumulator::RankOf(streamed,
                                                          p.location)),
                      static_cast<long long>(
                          core::MetricAccumulator::RankOf(frozen,
                                                          p.location)));
        }
        ++step;
      }
      window.Push(p);  // the true check-in becomes context for the next
    }
  }
  std::printf("\n%d online predictions — Rec@1: per-sample PTTA %.3f, "
              "streaming KB %.3f, frozen %.3f; Rec@10: %.3f / %.3f / %.3f\n",
              step, adapted_acc.Result().rec1, online_acc.Result().rec1,
              frozen_acc.Result().rec1, adapted_acc.Result().rec10,
              online_acc.Result().rec10, frozen_acc.Result().rec10);
  return 0;
}
