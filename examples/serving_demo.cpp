// Serving demo: the request path of a production deployment in miniature.
// A LightMob model is trained once, then frozen behind a
// serve::PredictionService — worker threads flush dynamic micro-batches of
// check-in requests, each prediction adapts per-user via the sharded
// serve::SessionStore (PTTA's knowledge base, LRU-bounded), and per-stage
// latency lands in mergeable log-bucketed histograms.
//
// Build: cmake --build build --target serving_demo

#include <cstdio>
#include <future>
#include <vector>

#include "core/lightmob.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "serve/load_gen.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"

using namespace adamove;

int main() {
  // World + trained model (identical setup to quickstart, abridged).
  data::DatasetPreset preset = data::NycLikePreset();
  data::ScalePreset(preset, 0.3);
  data::SyntheticResult world = data::GenerateSynthetic(preset.synthetic);
  data::PreprocessedData pre =
      data::Preprocess(world.trajectories, preset.preprocess);
  data::SplitConfig split;
  data::Dataset dataset = data::MakeDataset(pre, split);

  core::ModelConfig config;
  config.num_locations = dataset.num_locations;
  config.num_users = dataset.num_users;
  config.lambda = preset.lambda;
  core::LightMob model(config);
  core::TrainConfig tc;
  tc.max_epochs = 3;
  tc.max_train_samples_per_epoch = 2000;  // keep the demo snappy
  core::Trainer(tc).Train(model, dataset);

  // Online service: 2 workers, micro-batches of up to 8 requests flushed
  // after at most 1 ms, per-user adapter state capped at 512 residents.
  serve::SessionStoreConfig store_config;
  store_config.max_resident_users = 512;
  serve::SessionStore store(store_config);
  serve::ServiceConfig service_config;
  service_config.workers = 2;
  serve::PredictionService service(model, store, service_config);

  // Replay the test period as live traffic and score it online.
  std::vector<data::Sample> stream =
      serve::BuildReplayStream(dataset.test, /*min_requests=*/0);
  std::printf("serving %zu test-period requests...\n", stream.size());
  core::MetricAccumulator accuracy;
  std::vector<std::future<serve::Prediction>> inflight;
  inflight.reserve(stream.size());
  for (const auto& sample : stream) inflight.push_back(service.Submit(sample));
  for (size_t i = 0; i < stream.size(); ++i) {
    accuracy.Add(inflight[i].get().scores, stream[i].target.location);
  }
  service.Shutdown();

  const serve::ServiceStats stats = service.Stats();
  const core::Metrics m = accuracy.Result();
  std::printf("\nonline Rec@1 %.3f  Rec@10 %.3f  (served=%llu, mean batch "
              "%.2f, resident users=%zu, evictions=%llu)\n",
              m.rec1, m.rec10,
              static_cast<unsigned long long>(stats.completed),
              stats.MeanBatchSize(), store.UserCount(),
              static_cast<unsigned long long>(store.EvictionCount()));
  std::printf("stage latency:\n  queue  %s\n  encode %s\n  adapt  %s\n",
              stats.queue_us.SummaryMs().c_str(),
              stats.encode_us.SummaryMs().c_str(),
              stats.adapt_us.SummaryMs().c_str());
  // All zero unless fault points are armed (ADAMOVE_FAULTS) or deadlines /
  // shedding are configured — the availability ledger of DESIGN.md §9.
  std::printf("outcomes: ok=%llu degraded=%llu timeouts=%llu shed=%llu\n",
              static_cast<unsigned long long>(stats.ok_requests()),
              static_cast<unsigned long long>(stats.degraded_requests),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.shed_requests));
  return 0;
}
