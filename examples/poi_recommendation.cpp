// POI recommendation: the location-based-recommendation application from
// the paper's introduction. For a user's current trajectory, produce a
// ranked top-k list of next-POI candidates, comparing three recommenders:
// a popularity ranker, the frozen LightMob model, and full AdaMove. Also
// demonstrates model persistence (train once, save, reload, serve).
//
// Build: cmake --build build --target poi_recommendation

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/adamove.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace adamove;

namespace {

std::vector<int64_t> TopK(const std::vector<float>& scores, int k) {
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      return scores[static_cast<size_t>(a)] >
                             scores[static_cast<size_t>(b)];
                    });
  order.resize(static_cast<size_t>(k));
  return order;
}

void PrintRecs(const char* who, const std::vector<int64_t>& recs,
               int64_t truth) {
  std::printf("%-12s: [", who);
  for (size_t i = 0; i < recs.size(); ++i) {
    std::printf("%s%lld%s", i ? ", " : "",
                static_cast<long long>(recs[i]),
                recs[i] == truth ? "*" : "");
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  data::DatasetPreset preset = data::NycLikePreset();
  data::ScalePreset(preset, 0.4);
  data::SyntheticResult world = data::GenerateSynthetic(preset.synthetic);
  data::PreprocessedData pre =
      data::Preprocess(world.trajectories, preset.preprocess);
  data::SplitConfig split;
  split.eval_samples.context_sessions = preset.eval_context_sessions;
  data::Dataset dataset = data::MakeDataset(pre, split);

  // Popularity ranker baseline.
  std::vector<float> popularity(
      static_cast<size_t>(dataset.num_locations), 0.0f);
  for (const auto& s : dataset.train) {
    popularity[static_cast<size_t>(s.target.location)] += 1.0f;
  }

  // Train AdaMove once and persist it (a real recommender would reload the
  // checkpoint in its serving processes).
  core::ModelConfig config;
  config.num_locations = dataset.num_locations;
  config.num_users = dataset.num_users;
  config.lambda = preset.lambda;
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "adamove_poi.bin").string();
  {
    core::AdaMove trained(config);
    core::TrainConfig tc;
    tc.max_epochs = 6;
    tc.max_train_samples_per_epoch = 2500;  // keep the demo snappy
    trained.Train(dataset, tc);
    if (!trained.Save(checkpoint)) {
      std::fprintf(stderr, "failed to save checkpoint\n");
      return 1;
    }
  }
  core::AdaMove server(config);
  if (!server.Load(checkpoint)) {
    std::fprintf(stderr, "failed to load checkpoint\n");
    return 1;
  }
  std::printf("Serving from checkpoint %s\n\n", checkpoint.c_str());

  // Show top-5 recommendations for a few test trajectories.
  const int k = 5;
  for (size_t i = 0; i < 3 && i < dataset.test.size(); ++i) {
    const data::Sample& sample = dataset.test[i * 7 % dataset.test.size()];
    std::printf("User %lld, %zu recent check-ins, truth %lld "
                "('*' marks a hit):\n",
                static_cast<long long>(sample.user), sample.recent.size(),
                static_cast<long long>(sample.target.location));
    PrintRecs("Popularity", TopK(popularity, k), sample.target.location);
    PrintRecs("Frozen", TopK(server.model().Scores(sample), k),
              sample.target.location);
    PrintRecs("AdaMove", TopK(server.Predict(sample), k),
              sample.target.location);
    std::printf("\n");
  }

  // Aggregate top-5 hit rate over the whole test split.
  core::MetricAccumulator pop_acc, frozen_acc, ada_acc;
  for (const auto& sample : dataset.test) {
    pop_acc.Add(popularity, sample.target.location);
    frozen_acc.Add(server.model().Scores(sample), sample.target.location);
    ada_acc.Add(server.Predict(sample), sample.target.location);
  }
  std::printf("Top-5 hit rate over %zu test queries: popularity %.3f, "
              "frozen %.3f, AdaMove %.3f\n",
              dataset.test.size(), pop_acc.Result().rec5,
              frozen_acc.Result().rec5, ada_acc.Result().rec5);
  std::remove(checkpoint.c_str());
  return 0;
}
