// Quickstart: the complete AdaMove workflow in ~60 lines.
//
//   1. generate (or load) a check-in corpus,
//   2. preprocess into sessions and split into train/val/test samples,
//   3. train LightMob with the contrastive hybrid loss,
//   4. predict with Preference-aware Test-Time Adaptation,
//   5. compare frozen vs adapted accuracy.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart

#include <cstdio>

#include "core/adamove.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace adamove;

int main() {
  // 1. A small synthetic city with a mid-timeline behaviour shift.
  data::DatasetPreset preset = data::NycLikePreset();
  data::ScalePreset(preset, 0.4);  // keep the demo fast
  data::SyntheticResult world = data::GenerateSynthetic(preset.synthetic);
  std::printf("Generated %zu users of raw check-ins.\n",
              world.trajectories.size());

  // 2. Preprocess exactly as the paper (filter, 72h sessions, 70/10/20).
  data::PreprocessedData pre =
      data::Preprocess(world.trajectories, preset.preprocess);
  data::SplitConfig split;
  split.eval_samples.context_sessions = preset.eval_context_sessions;
  data::Dataset dataset = data::MakeDataset(pre, split);
  std::printf("After preprocessing: %lld users, %lld locations, "
              "%zu/%zu/%zu train/val/test samples.\n",
              static_cast<long long>(dataset.num_users),
              static_cast<long long>(dataset.num_locations),
              dataset.train.size(), dataset.val.size(),
              dataset.test.size());

  // 3. Train LightMob (encoder + predictor + contrastive history branch).
  core::ModelConfig model_config;
  model_config.num_locations = dataset.num_locations;
  model_config.num_users = dataset.num_users;
  model_config.lambda = preset.lambda;
  core::AdaMove model(model_config);
  core::TrainConfig train_config;
  train_config.max_epochs = 6;
  train_config.max_train_samples_per_epoch = 2500;  // keep the demo snappy
  train_config.verbose = true;
  model.Train(dataset, train_config);

  // 4. Predict the next location for one test trajectory, with adaptation.
  const data::Sample& sample = dataset.test.front();
  const int64_t predicted = model.PredictLocation(sample);
  std::printf("\nUser %lld, trajectory of %zu points -> predicted next "
              "location %lld (truth %lld)\n",
              static_cast<long long>(sample.user), sample.recent.size(),
              static_cast<long long>(predicted),
              static_cast<long long>(sample.target.location));

  // 5. Frozen vs test-time-adapted evaluation.
  core::EvalResult frozen = model.EvaluateFrozen(dataset.test);
  core::EvalResult adapted = model.EvaluateTta(dataset.test);
  std::printf("\nFrozen  : Rec@1 %.4f  Rec@10 %.4f  MRR %.4f\n",
              frozen.metrics.rec1, frozen.metrics.rec10,
              frozen.metrics.mrr);
  std::printf("AdaMove : Rec@1 %.4f  Rec@10 %.4f  MRR %.4f  "
              "(%.2f ms/sample)\n",
              adapted.metrics.rec1, adapted.metrics.rec10,
              adapted.metrics.mrr, adapted.avg_ms_per_sample);
  return 0;
}
