// Distribution-shift study: quantifies *why* test-time adaptation helps.
// Splits the test samples of a shifted world into "stable" users and
// "shifted" users (using the simulator's ground truth) and reports the
// frozen-vs-adapted gap separately — adaptation should matter much more
// for shifted users. Also sweeps the shift magnitude to show the gap grow.
//
// Build: cmake --build build --target distribution_shift_study

#include <cstdio>
#include <map>
#include <set>

#include "common/table_printer.h"
#include "core/adamove.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace adamove;

namespace {

struct GroupMetrics {
  core::Metrics stable;
  core::Metrics shifted;
};

GroupMetrics EvaluateByGroup(core::AdaMove& model,
                             const data::Dataset& dataset,
                             const std::set<int64_t>& shifted_dense,
                             bool adapt) {
  core::MetricAccumulator stable_acc, shifted_acc;
  for (const auto& s : dataset.test) {
    const auto scores =
        adapt ? model.Predict(s) : model.model().Scores(s);
    (shifted_dense.count(s.user) ? shifted_acc : stable_acc)
        .Add(scores, s.target.location);
  }
  return {stable_acc.Result(), shifted_acc.Result()};
}

}  // namespace

int main() {
  common::TablePrinter table({"Shift fraction", "Group", "Frozen Rec@1",
                              "AdaMove Rec@1", "Gain"});
  for (double shift_frac : {0.0, 0.4, 0.8}) {
    data::DatasetPreset preset = data::NycLikePreset();
    data::ScalePreset(preset, 0.4);
    preset.synthetic.shift_user_frac = shift_frac;
    data::SyntheticResult world = data::GenerateSynthetic(preset.synthetic);
    data::PreprocessedData pre =
        data::Preprocess(world.trajectories, preset.preprocess);
    data::SplitConfig split;
    split.eval_samples.context_sessions = preset.eval_context_sessions;
    data::Dataset dataset = data::MakeDataset(pre, split);

    // Map the simulator's raw shifted-user ids to dense ids.
    std::set<int64_t> shifted_raw(world.shifted_users.begin(),
                                  world.shifted_users.end());
    std::set<int64_t> shifted_dense;
    for (size_t u = 0; u < pre.user_to_raw.size(); ++u) {
      if (shifted_raw.count(pre.user_to_raw[u]) > 0) {
        shifted_dense.insert(static_cast<int64_t>(u));
      }
    }

    core::ModelConfig config;
    config.num_locations = dataset.num_locations;
    config.num_users = dataset.num_users;
    config.lambda = preset.lambda;
    core::AdaMove model(config);
    core::TrainConfig tc;
    tc.max_epochs = 6;
    tc.max_train_samples_per_epoch = 2500;  // keep the demo snappy
    model.Train(dataset, tc);

    GroupMetrics frozen =
        EvaluateByGroup(model, dataset, shifted_dense, /*adapt=*/false);
    GroupMetrics adapted =
        EvaluateByGroup(model, dataset, shifted_dense, /*adapt=*/true);
    auto add_row = [&](const char* group, const core::Metrics& f,
                       const core::Metrics& a) {
      if (f.count == 0) return;
      table.AddRow({common::TablePrinter::Fmt(shift_frac, 1), group,
                    common::TablePrinter::Fmt(f.rec1),
                    common::TablePrinter::Fmt(a.rec1),
                    common::TablePrinter::Fmt(a.rec1 - f.rec1)});
    };
    add_row("stable", frozen.stable, adapted.stable);
    add_row("shifted", frozen.shifted, adapted.shifted);
    std::printf("shift_frac=%.1f done (%zu test samples, %zu shifted "
                "users)\n",
                shift_frac, dataset.test.size(), shifted_dense.size());
  }
  std::printf("\n");
  table.Print();
  std::printf("\nExpected: the adaptation gain concentrates on shifted "
              "users and grows with the shift fraction — the mechanism "
              "behind the paper's Fig. 1 motivation and Table II gains.\n");
  return 0;
}
