#ifndef ADAMOVE_TOOLS_ADAMOVE_LINT_LINT_H_
#define ADAMOVE_TOOLS_ADAMOVE_LINT_LINT_H_

#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace adamove::lint {

/// Compiled repo linter (check.sh stage 4). Reimplements the nine invariant
/// rules scripts/lint.sh used to express as grep pipelines, on top of a real
/// comment- and string-literal-aware tokenizer, which removes the two known
/// defect classes of the grep version:
///
///   - false negatives: `grep -v NOLINT` silenced every rule whenever the
///     characters N-O-L-I-N-T appeared anywhere on a line — including inside
///     a string literal — and a bare NOLINT suppressed rules it never named;
///   - false positives: the comment stripper only recognized line-LEADING
///     `//`, so a trailing comment or a /* block comment */ mentioning
///     std::mutex (or any other rule trigger) failed the build.
///
/// Here, rules run over code text with comments removed and string-literal
/// contents blanked; NOLINT is honored only inside comment text, and
/// NOLINT(rule-a,rule-b) suppresses exactly the named rules.
///
/// On top of the per-line rules, the linter proves three cross-registry
/// consistency properties of the tree (things no single-file grep can see):
/// fault points vs DESIGN.md and the test suite, ADAMOVE_* env knobs vs
/// README.md, and ctest labels vs the check.sh stages that must run them.

struct Diagnostic {
  std::string file;  // repo-relative, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// "file:line: rule: message" — the one format everything emits.
std::string FormatDiagnostic(const Diagnostic& d);

/// One physical source line after tokenization.
struct LintLine {
  /// Code with comments removed and string/char-literal contents blanked.
  /// Removed characters become spaces so token boundaries and columns
  /// survive (`a/*x*/b` must not fuse into `ab`).
  std::string code;
  /// Concatenated comment text on this line (line, trailing, and block).
  std::string comment;
  /// Contents of each string literal that closes on this line, in order.
  std::vector<std::string> strings;
};

/// Splits a translation unit into per-line code/comment/string views.
/// Handles //, /* */ (multi-line), "..." with escapes, '...', digit
/// separators (1'000'000), and R"delim(...)delim" raw strings.
std::vector<LintLine> Tokenize(const std::string& contents);

/// A NOLINT directive parsed out of one line's comment text.
struct Nolint {
  bool present = false;
  bool all = false;               // bare NOLINT: suppress every rule
  std::set<std::string> rules;    // NOLINT(a,b): suppress exactly these
};
Nolint ParseNolint(const std::string& comment);
bool Suppresses(const Nolint& n, const std::string& rule);

/// Runs the nine per-line rules over one file. `path` is the repo-relative
/// path (forward slashes) — rule scoping (e.g. "not in common/mutex.h") is
/// decided from it.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& contents);

/// Cross-registry consistency checks over a checked-out tree:
///   fault-point-docs      every FaultPoint("x") in src/ appears in DESIGN.md
///   fault-point-coverage  ... and in at least one file under tests/
///   env-docs              every "ADAMOVE_*" literal read in src/ appears in
///                         README.md
///   ctest-labels          every LABELS entry in tests/CMakeLists.txt appears
///                         in a `ctest -L` expression in scripts/check.sh
std::vector<Diagnostic> CrossRegistryLints(const std::filesystem::path& root);

/// The whole gate: per-line rules over src/**/*.{h,cc} plus the
/// cross-registry checks. `files_scanned` (optional) reports coverage.
std::vector<Diagnostic> LintTree(const std::filesystem::path& root,
                                 int* files_scanned = nullptr);

}  // namespace adamove::lint

#endif  // ADAMOVE_TOOLS_ADAMOVE_LINT_LINT_H_
