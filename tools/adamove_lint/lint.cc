#include "adamove_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace adamove::lint {
namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// The nine per-line rules.
// ---------------------------------------------------------------------------

struct Rule {
  const char* name;
  std::regex pattern;
  bool (*applies)(const std::string& path);
  const char* message;
};

// Scoping predicates mirror the path exemptions the shell lints encoded
// with find|grep -v: the one file per invariant that is allowed to hold the
// raw primitive, and the subsystems whose job the rule is protecting.
bool InSrc(const std::string& p) { return HasPrefix(p, "src/"); }

bool MutexScope(const std::string& p) {
  return InSrc(p) && p != "src/common/mutex.h";
}

bool DurableScope(const std::string& p) {
  return InSrc(p) && p != "src/common/durable_io.h" &&
         p != "src/common/durable_io.cc" && !HasPrefix(p, "src/data/");
}

bool SessionStoreScope(const std::string& p) {
  return InSrc(p) && !HasPrefix(p, "src/shard/") &&
         p != "src/serve/session_store.h" && p != "src/serve/session_store.cc";
}

bool X86Scope(const std::string& p) {
  return InSrc(p) && p != "src/nn/kernels_avx2.cc";
}

bool NeonScope(const std::string& p) {
  return InSrc(p) && p != "src/nn/kernels_neon.cc";
}

bool PlanExecutorScope(const std::string& p) {
  return p == "src/nn/plan/executor.cc" || p == "src/nn/plan/executor.h";
}

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"raw-mutex",
       std::regex("std::(mutex|condition_variable|lock_guard|unique_lock|"
                  "scoped_lock|shared_mutex)\\b"),
       &MutexScope,
       "raw standard locking primitive — all locking goes through the "
       "annotated common::Mutex wrappers so ADAMOVE_ANALYZE can check the "
       "contracts (common/mutex.h, DESIGN.md §10)"},
      {"naked-new", std::regex("\\bnew +[A-Za-z_][A-Za-z0-9_:<>]*"), &InSrc,
       "naked `new` — use make_unique/make_shared or an owning factory"},
      {"rand", std::regex("\\bs?rand\\("), &InSrc,
       "rand()/srand() is unseeded global state that breaks the repo-wide "
       "determinism contract — use common/rng.h"},
      {"raw-write", std::regex("std::ofstream|\\b(std::)?fopen *\\("),
       &DurableScope,
       "raw file-write path outside common/durable_io — state the process "
       "must survive losing goes through WriteFileAtomic + framing "
       "(DESIGN.md §11); data/ exports of derivable artifacts are "
       "exempt"},
      {"session-store-construction",
       std::regex("\\bSessionStore[ \\t]+[A-Za-z_][A-Za-z0-9_]*[ \\t]*[({]|"
                  "make_unique<[^>]*SessionStore"),
       &SessionStoreScope,
       "direct SessionStore construction outside src/shard — production "
       "session state must be owned by a shard group so it gets the cold "
       "tier, canonical ingest and capacity management (DESIGN.md §12)"},
      {"raw-intrinsics-x86", std::regex("_mm256_|_mm512_|__m256|__m512"),
       &X86Scope,
       "x86 vector intrinsic outside src/nn/kernels_avx2.cc — all SIMD "
       "lives behind the kernel dispatch table (DESIGN.md §13)"},
      {"raw-intrinsics-neon",
       std::regex("vld1q_|vst1q_|vfmaq_|float32x4_t|float64x2_t|vaddvq_"),
       &NeonScope,
       "NEON intrinsic outside src/nn/kernels_neon.cc — all SIMD lives "
       "behind the kernel dispatch table (DESIGN.md §13)"},
      {"plan-executor-alloc",
       std::regex("\\bnew\\b|\\bTensor\\b|push_back|emplace_back|"
                  "\\.[Rr]esize\\(|\\.reserve\\(|make_unique|make_shared"),
       &PlanExecutorScope,
       "allocation idiom in the static-plan executor — its hot path is "
       "contractually zero-allocation; every temp lives in the pre-planned "
       "arena (DESIGN.md §14)"},
  };
  return *rules;
}

// todo-label is separate: it scans comment text too (that is where TODOs
// live) and its exemption is per-occurrence, not per-line — a line carrying
// both TODO(owner): and a bare TODO still fails.
bool HasUnownedTodo(const std::string& text) {
  static const std::regex kTodo("\\bTODO\\b");
  static const std::regex kOwned("^\\(([A-Za-z0-9_.-]+)\\)");
  auto it = std::sregex_iterator(text.begin(), text.end(), kTodo);
  for (; it != std::sregex_iterator(); ++it) {
    const std::string rest = text.substr(
        static_cast<size_t>(it->position()) + it->length());
    if (!std::regex_search(rest, kOwned)) return true;
  }
  return false;
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
         d.message;
}

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

std::vector<LintLine> Tokenize(const std::string& text) {
  std::vector<LintLine> lines;
  LintLine cur;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string literal;    // accumulating string-literal contents
  std::string raw_close;  // ")delim\"" terminator of the open raw string
  char last_code = '\0';  // previous significant code char (separator test)

  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments end; an unterminated "..." or '...' is ill-formed
      // C++ — recover to code so one bad line cannot blank the whole file.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      lines.push_back(std::move(cur));
      cur = {};
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          cur.code += "  ";
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          cur.code += "  ";
          ++i;
        } else if (c == '"' && last_code == 'R') {
          // R"delim( ... )delim" — find the open paren to learn the delim.
          size_t open = text.find('(', i + 1);
          if (open == std::string::npos) {
            cur.code += c;  // ill-formed; treat as plain char
          } else {
            raw_close = ")" + text.substr(i + 1, open - i - 1) + "\"";
            literal.clear();
            cur.code += '"';
            for (size_t j = i + 1; j <= open; ++j) cur.code += ' ';
            i = open;
            state = State::kRawString;
          }
          last_code = '"';
        } else if (c == '"') {
          literal.clear();
          cur.code += '"';
          state = State::kString;
          last_code = '"';
        } else if (c == '\'' && !IsIdentChar(last_code)) {
          cur.code += '\'';
          state = State::kChar;
          last_code = '\'';
        } else {
          cur.code += c;
          if (c != ' ' && c != '\t') last_code = c;
        }
        break;
      }
      case State::kLineComment:
        cur.code += ' ';
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          cur.code += "  ";
          ++i;
        } else {
          cur.code += ' ';
          cur.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          literal += c;
          literal += text[i + 1];
          cur.code += "  ";
          ++i;
        } else if (c == '"') {
          cur.code += '"';
          cur.strings.push_back(literal);
          state = State::kCode;
        } else {
          literal += c;
          cur.code += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          cur.code += "  ";
          ++i;
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kCode;
        } else {
          cur.code += ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          for (size_t j = 0; j + 1 < raw_close.size(); ++j) cur.code += ' ';
          cur.code += '"';
          cur.strings.push_back(literal);
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          literal += c;
          cur.code += ' ';
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

Nolint ParseNolint(const std::string& comment) {
  Nolint out;
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    out.present = true;
    size_t after = pos + 6;  // past "NOLINT"
    if (after < comment.size() && comment[after] == '(') {
      const size_t close = comment.find(')', after);
      if (close != std::string::npos) {
        std::string list = comment.substr(after + 1, close - after - 1);
        size_t start = 0;
        while (start <= list.size()) {
          const size_t comma = list.find(',', start);
          const std::string item = Trim(
              comma == std::string::npos ? list.substr(start)
                                         : list.substr(start, comma - start));
          if (!item.empty()) out.rules.insert(item);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        pos = close;
        continue;
      }
    }
    out.all = true;  // bare NOLINT (incl. "NOLINT:" with a stated reason)
    pos = after;
  }
  return out;
}

bool Suppresses(const Nolint& n, const std::string& rule) {
  return n.present && (n.all || n.rules.count(rule) != 0);
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& contents) {
  std::vector<Diagnostic> out;
  const std::vector<LintLine> lines = Tokenize(contents);
  for (size_t i = 0; i < lines.size(); ++i) {
    const LintLine& line = lines[i];
    const Nolint nolint = ParseNolint(line.comment);
    const int lineno = static_cast<int>(i) + 1;
    for (const Rule& rule : Rules()) {
      if (!rule.applies(path)) continue;
      if (!std::regex_search(line.code, rule.pattern)) continue;
      if (Suppresses(nolint, rule.name)) continue;
      out.push_back({path, lineno, rule.name, rule.message});
    }
    if (InSrc(path) &&
        (HasUnownedTodo(line.code) || HasUnownedTodo(line.comment)) &&
        !Suppresses(nolint, "todo-label")) {
      out.push_back({path, lineno, "todo-label",
                     "TODO without an owner rots — write TODO(owner): ..."});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cross-registry checks.
// ---------------------------------------------------------------------------

namespace {

std::vector<fs::path> SourceFiles(const fs::path& root) {
  std::vector<fs::path> files;
  const fs::path src = root / "src";
  if (!fs::exists(src)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cc" || ext == ".h") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

struct Decl {
  std::string file;
  int line;
  std::string name;
};

/// First declaration site of each distinct name (map keeps output stable).
std::map<std::string, Decl> CollectDecls(
    const fs::path& root, const std::regex& code_trigger,
    const std::regex& name_shape) {
  std::map<std::string, Decl> decls;
  for (const fs::path& file : SourceFiles(root)) {
    const std::vector<LintLine> lines = Tokenize(ReadFile(file));
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i].code, code_trigger)) continue;
      for (const std::string& s : lines[i].strings) {
        if (!std::regex_match(s, name_shape)) continue;
        decls.emplace(s, Decl{RelPath(root, file),
                              static_cast<int>(i) + 1, s});
      }
    }
  }
  return decls;
}

std::string ReadTreeText(const fs::path& dir) {
  std::string all;
  if (!fs::exists(dir)) return all;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) all += ReadFile(entry.path());
  }
  return all;
}

}  // namespace

std::vector<Diagnostic> CrossRegistryLints(const fs::path& root) {
  std::vector<Diagnostic> out;

  // Fault points: every FaultPoint("subsystem.site") wired into src/ must be
  // catalogued in DESIGN.md and exercised somewhere under tests/ — an
  // undocumented point is invisible to operators, an untested one is a
  // degradation path that has never actually degraded.
  const auto fault_points =
      CollectDecls(root, std::regex("\\bFaultPoint\\s*\\(\\s*\""),
                   std::regex("[a-z0-9_]+\\.[a-z0-9_.]+"));
  const std::string design = ReadFile(root / "DESIGN.md");
  const std::string tests_text = ReadTreeText(root / "tests");
  for (const auto& [name, decl] : fault_points) {
    if (design.find(name) == std::string::npos) {
      out.push_back({decl.file, decl.line, "fault-point-docs",
                     "fault point \"" + name +
                         "\" is not documented in DESIGN.md"});
    }
    if (tests_text.find(name) == std::string::npos) {
      out.push_back({decl.file, decl.line, "fault-point-coverage",
                     "fault point \"" + name +
                         "\" is not exercised by any test under tests/"});
    }
  }

  // Env knobs: every "ADAMOVE_*" literal read in src/ must be documented in
  // README.md — a knob nobody can discover is a behavior fork nobody can
  // explain.
  const auto env_vars = CollectDecls(
      root, std::regex("\\b(EnvString|EnvInt|EnvDouble|getenv)\\s*\\(\\s*\""),
      std::regex("ADAMOVE_[A-Z0-9_]+"));
  const std::string readme = ReadFile(root / "README.md");
  for (const auto& [name, decl] : env_vars) {
    if (readme.find(name) == std::string::npos) {
      out.push_back({decl.file, decl.line, "env-docs",
                     "environment knob " + name +
                         " is read here but not documented in README.md"});
    }
  }

  // ctest labels: every label registered in tests/CMakeLists.txt must appear
  // in some `ctest -L` expression in scripts/check.sh — otherwise a labeled
  // suite silently runs in no gate stage beyond the unlabeled tier-1 pass.
  const std::string cmake_path = "tests/CMakeLists.txt";
  const std::string cmake_text = ReadFile(root / "tests" / "CMakeLists.txt");
  const std::string check_text = ReadFile(root / "scripts" / "check.sh");
  std::set<std::string> staged;
  {
    static const std::regex kStage("-L +'([^']+)'");
    auto it = std::sregex_iterator(check_text.begin(), check_text.end(),
                                   kStage);
    for (; it != std::sregex_iterator(); ++it) {
      std::istringstream expr((*it)[1].str());
      std::string label;
      while (std::getline(expr, label, '|')) staged.insert(label);
    }
  }
  {
    static const std::regex kLabels("LABELS +(\"([^\"]+)\"|([A-Za-z0-9_;]+))");
    std::istringstream stream(cmake_text);
    std::string line;
    int lineno = 0;
    std::set<std::string> reported;
    while (std::getline(stream, line)) {
      ++lineno;
      std::smatch m;
      if (!std::regex_search(line, m, kLabels)) continue;
      std::istringstream list(m[2].matched ? m[2].str() : m[3].str());
      std::string label;
      while (std::getline(list, label, ';')) {
        if (label.empty() || staged.count(label) != 0) continue;
        if (!reported.insert(label).second) continue;
        out.push_back({cmake_path, lineno, "ctest-labels",
                       "ctest label '" + label +
                           "' is not run by any `ctest -L` stage in "
                           "scripts/check.sh"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> LintTree(const fs::path& root, int* files_scanned) {
  std::vector<Diagnostic> out;
  int scanned = 0;
  for (const fs::path& file : SourceFiles(root)) {
    ++scanned;
    std::vector<Diagnostic> file_diags =
        LintSource(RelPath(root, file), ReadFile(file));
    out.insert(out.end(), file_diags.begin(), file_diags.end());
  }
  std::vector<Diagnostic> cross = CrossRegistryLints(root);
  out.insert(out.end(), cross.begin(), cross.end());
  if (files_scanned != nullptr) *files_scanned = scanned;
  return out;
}

}  // namespace adamove::lint
