// adamove_lint — the compiled repo invariant linter (check.sh stage 4).
//
//   adamove_lint [--root <dir>]
//
// Runs the nine per-line rules over src/**/*.{h,cc} plus the cross-registry
// consistency checks (fault points vs DESIGN.md/tests, ADAMOVE_* knobs vs
// README.md, ctest labels vs check.sh), printing one
// `file:line: rule: message` diagnostic per finding. Exit 0 when clean,
// 1 on findings, 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "adamove_lint/lint.h"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else {
      std::fprintf(stderr, "usage: adamove_lint [--root <dir>]\n");
      return 2;
    }
  }
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr,
                 "adamove_lint: %s has no src/ directory — run from the "
                 "repo root or pass --root\n",
                 root.string().c_str());
    return 2;
  }

  int files = 0;
  const std::vector<adamove::lint::Diagnostic> diags =
      adamove::lint::LintTree(root, &files);
  for (const adamove::lint::Diagnostic& d : diags) {
    std::printf("%s\n", adamove::lint::FormatDiagnostic(d).c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "adamove_lint: %zu finding(s) in %d files\n",
                 diags.size(), files);
    return 1;
  }
  std::printf(
      "adamove_lint: clean (%d files, 9 rules + cross-registry checks)\n",
      files);
  return 0;
}
